package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func mustAppend(t *testing.T, j *Journal, typ Type, job int, data string) Record {
	t.Helper()
	var raw []byte
	if data != "" {
		raw = []byte(data)
	}
	r, err := j.Append(typ, job, raw)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return r
}

func segPaths(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var segs []string
	for _, e := range entries {
		if isSegName(e.Name()) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []Record{
		mustAppend(t, j, Submitted, 1, `{"label":"a"}`),
		mustAppend(t, j, Admitted, 1, ""),
		mustAppend(t, j, Checkpoint, 1, `{"pass":1}`),
		mustAppend(t, j, Terminal, 1, `{"state":"done"}`),
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Type != want[i].Type || got[i].Job != want[i].Job ||
			string(got[i].Data) != string(want[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if m := j2.Metrics(); m.ReplayedRecords != 4 || m.TornTails != 0 || m.ReplayErrors != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	// Appends continue the sequence.
	r := mustAppend(t, j2, Submitted, 2, "")
	if r.Seq != want[len(want)-1].Seq+1 {
		t.Fatalf("seq after reopen = %d, want %d", r.Seq, want[len(want)-1].Seq+1)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Submitted, 1, `{"label":"a"}`)
	mustAppend(t, j, Admitted, 1, "")
	j.Close()

	// Simulate a crash mid-append: a frame header plus only the first
	// few bytes of its payload.
	segs := segPaths(t, dir)
	seg := segs[len(segs)-1]
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, raw...), raw[:frameHeader+4]...)
	if err := os.WriteFile(seg, torn, 0o666); err != nil {
		t.Fatal(err)
	}

	// Read-only replay tolerates it and leaves the file alone.
	recs, info, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(recs) != 2 || info.TornTails != 1 {
		t.Fatalf("replay got %d records, info %+v", len(recs), info)
	}
	if st, _ := os.Stat(seg); st.Size() != int64(len(torn)) {
		t.Fatalf("read-only Replay modified the segment")
	}

	// Open repairs: truncates the tail and counts it.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := j2.Replayed()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	if m := j2.Metrics(); m.TornTails != 1 || m.ReplayErrors != 0 {
		t.Fatalf("metrics: %+v", m)
	}
	if st, _ := os.Stat(seg); st.Size() != int64(len(raw)) {
		t.Fatalf("repair left %d bytes, want %d", fileSize(seg), len(raw))
	}
	// Appends after repair land cleanly and replay again.
	mustAppend(t, j2, Terminal, 1, `{"state":"done"}`)
	j2.Close()
	recs, info, err = Replay(dir)
	if err != nil || len(recs) != 3 || info.TornTails != 0 {
		t.Fatalf("post-repair replay: %d records, info %+v, err %v", len(recs), info, err)
	}
}

func fileSize(p string) int64 {
	st, err := os.Stat(p)
	if err != nil {
		return -1
	}
	return st.Size()
}

func TestCorruptCRCMidLog(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var frames []int64
	prev := int64(0)
	for i := 1; i <= 4; i++ {
		mustAppend(t, j, Submitted, i, fmt.Sprintf(`{"label":"job%d"}`, i))
		sz := j.LogBytes()
		frames = append(frames, sz-prev)
		prev = sz
	}
	j.Close()

	// Flip a payload byte inside frame 2 (0-indexed: second record).
	segs := segPaths(t, dir)
	seg := segs[len(segs)-1]
	raw, _ := os.ReadFile(seg)
	off := frames[0] + frameHeader + 2 // inside record 2's payload
	raw[off] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o666); err != nil {
		t.Fatal(err)
	}

	// Everything from the corrupt frame on is dropped, deterministically.
	recs, info, err := Replay(dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(recs) != 1 || recs[0].Job != 1 {
		t.Fatalf("replay got %d records (want 1): %+v", len(recs), recs)
	}
	if info.ReplayErrors != 1 {
		t.Fatalf("info: %+v", info)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := j2.Replayed(); len(got) != 1 {
		t.Fatalf("replayed %d records, want 1", len(got))
	}
	if m := j2.Metrics(); m.ReplayErrors != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if sz := fileSize(seg); sz != frames[0] {
		t.Fatalf("repair left %d bytes, want %d", sz, frames[0])
	}
}

func TestRotationCompactReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation almost every append.
	j, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var live []Record
	for i := 1; i <= 8; i++ {
		r := mustAppend(t, j, Submitted, i, fmt.Sprintf(`{"label":"job%d"}`, i))
		if i >= 7 {
			live = append(live, r) // jobs 7,8 stay live
		} else {
			mustAppend(t, j, Terminal, i, `{"state":"done"}`)
		}
	}
	if n := len(segPaths(t, dir)); n < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", n)
	}
	before := j.LogBytes()
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if after := j.LogBytes(); after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d", before, after)
	}
	// Records appended after compaction replay alongside the snapshot.
	post := mustAppend(t, j, Admitted, 7, "")
	j.Close()

	j2, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := j2.Replayed()
	want := append(append([]Record{}, live...), post)
	if !reflect.DeepEqual(normalize(got), normalize(want)) {
		t.Fatalf("replay after compaction:\n got %+v\nwant %+v", got, want)
	}
	// Sequence numbers keep increasing across compaction + reopen.
	r := mustAppend(t, j2, Checkpoint, 7, `{"pass":1}`)
	if r.Seq <= post.Seq {
		t.Fatalf("seq went backwards: %d after %d", r.Seq, post.Seq)
	}
}

// normalize strips the json.RawMessage wrapper differences for
// comparison.
func normalize(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprintf("%d/%d/%d/%s", r.Seq, r.Type, r.Job, string(r.Data))
	}
	return out
}

func TestBadLengthFrame(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, j, Submitted, 1, "")
	j.Close()

	segs := segPaths(t, dir)
	seg := segs[len(segs)-1]
	// Append a frame header claiming an absurd length.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	f.Write(hdr[:]) //nolint:errcheck
	f.Close()

	recs, info, err := Replay(dir)
	if err != nil || len(recs) != 1 || info.ReplayErrors != 1 {
		t.Fatalf("replay: %d records, info %+v, err %v", len(recs), info, err)
	}
}

func TestReplayedConsumedOnce(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	_ = j2.Replayed()
	if r := j2.Replayed(); r != nil {
		t.Fatalf("second Replayed returned %v, want nil", r)
	}
}

func TestRecordJSONStable(t *testing.T) {
	r := Record{Seq: 3, Type: Checkpoint, Job: 7, Data: json.RawMessage(`{"pass":2}`)}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != 3 || back.Type != Checkpoint || back.Job != 7 || string(back.Data) != `{"pass":2}` {
		t.Fatalf("round trip: %+v", back)
	}
}
