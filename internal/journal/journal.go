package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Type tags a lifecycle record.  The values are part of the on-disk
// format and must never be renumbered.
type Type uint8

const (
	// Submitted carries the job's opaque spec bytes; it is the first
	// record a job ever writes and makes the job "live".
	Submitted Type = 1
	// Admitted marks the job as having started running (resources
	// reserved, scratch dir created).
	Admitted Type = 2
	// Checkpoint carries a pass-boundary manifest; the latest one per
	// job is the resume point after a crash.
	Checkpoint Type = 3
	// Terminal marks the job done/failed/canceled; the job is no
	// longer live and its records are dropped at the next compaction.
	Terminal Type = 4
)

func (t Type) String() string {
	switch t {
	case Submitted:
		return "submitted"
	case Admitted:
		return "admitted"
	case Checkpoint:
		return "checkpoint"
	case Terminal:
		return "terminal"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Record is one framed journal entry.  Data is an opaque payload owned
// by the writer (the sched engine stores job specs, pass manifests and
// terminal states as JSON).
type Record struct {
	Seq  uint64          `json:"seq"`
	Type Type            `json:"type"`
	Job  int             `json:"job"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Options configures a Journal.
type Options struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size.  0 means 1 MiB.
	SegmentBytes int64
}

// Metrics is a point-in-time snapshot of journal health counters.
type Metrics struct {
	Bytes           int64 // live segment bytes on disk (excludes snapshot)
	Segments        int   // live segment files
	Appends         int64 // records appended this process
	FsyncErrors     int64 // failed fsyncs on append
	Compactions     int64 // successful Compact calls
	ReplayedRecords int   // records recovered at Open
	TornTails       int   // partial trailing frames dropped at Open/Replay
	ReplayErrors    int   // corrupt frames (bad CRC / bad length) hit at Open/Replay
}

// maxFrame bounds a single record; anything larger is treated as
// corruption rather than an allocation request.
const maxFrame = 16 << 20

const defaultSegmentBytes = 1 << 20

// frame layout: [4B little-endian payload len][4B little-endian
// CRC32-IEEE of payload][payload JSON].
const frameHeader = 8

// Journal is an append-only, fsync'd, CRC-framed log with segment
// rotation and compacting snapshots.  All methods are safe for
// concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	segBytes int64    // bytes in the active segment
	allBytes int64    // bytes across all live segments
	segments []string // live segment paths, oldest first, excluding active
	active   string   // active segment path
	nextSeq  uint64
	closed   bool
	m        Metrics
	replayed []Record // records recovered at Open, consumed by Replayed
}

type snapshot struct {
	// LastSeq is the compaction cutoff: every record with seq <=
	// LastSeq is summarized by Records; segments only matter for seq >
	// LastSeq.
	LastSeq uint64   `json:"lastSeq"`
	Records []Record `json:"records"`
}

func segName(firstSeq uint64) string { return fmt.Sprintf("wal-%016d.log", firstSeq) }
func snapName(lastSeq uint64) string { return fmt.Sprintf("snap-%016d.json", lastSeq) }
func isSegName(name string) bool {
	return strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log")
}
func isSnapName(name string) bool {
	return strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".json")
}

// Open opens (creating if needed) the journal in dir, replays every
// intact record, repairs the log in place (truncating a torn tail and
// dropping anything after a corrupt frame), and returns the journal
// ready for appends.  The replayed records are available once via
// Replayed.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, nextSeq: 1}
	recs, info, err := replay(dir, j)
	if err != nil {
		return nil, err
	}
	j.m.ReplayedRecords = len(recs)
	j.m.TornTails = info.TornTails
	j.m.ReplayErrors = info.ReplayErrors
	j.replayed = recs
	// The snapshot cutoff can sit past the last surviving record (dead
	// jobs' records are dropped at compaction), so take the max.
	if n := len(recs); n > 0 && recs[n-1].Seq+1 > j.nextSeq {
		j.nextSeq = recs[n-1].Seq + 1
	}
	if info.snapLastSeq+1 > j.nextSeq {
		j.nextSeq = info.snapLastSeq + 1
	}
	// Reopen the newest surviving segment for append, or start fresh.
	if j.active == "" {
		if err := j.newSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(j.active, os.O_RDWR|os.O_APPEND, 0o666)
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: %w", err)
		}
		j.f, j.segBytes = f, st.Size()
	}
	j.m.Segments = len(j.segments) + 1
	j.m.Bytes = j.allBytes + j.segBytes
	return j, nil
}

// ReplayInfo describes what a read-only Replay encountered.
type ReplayInfo struct {
	TornTails    int
	ReplayErrors int

	snapLastSeq uint64
}

// Replay reads every intact record from the journal in dir without
// modifying anything on disk.  It is safe to run against a journal
// another process is actively appending to (the in-flight tail frame
// is simply reported as torn).
func Replay(dir string) ([]Record, ReplayInfo, error) {
	return replay(dir, nil)
}

// replay scans snapshot+segments in dir.  When j is non-nil it repairs
// in place: a torn or corrupt frame truncates that segment at the bad
// offset and deletes every later segment.  It also records the
// surviving segment list into j.
func replay(dir string, j *Journal) ([]Record, ReplayInfo, error) {
	var info ReplayInfo
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) && j == nil {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("journal: %w", err)
	}
	var segs, snaps []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case isSegName(e.Name()):
			segs = append(segs, e.Name())
		case isSnapName(e.Name()):
			snaps = append(snaps, e.Name())
		}
	}
	sort.Strings(segs)
	sort.Strings(snaps)

	var recs []Record
	if len(snaps) > 0 {
		// Only the newest snapshot counts; older ones are leftovers
		// from an interrupted compaction.
		name := snaps[len(snaps)-1]
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, info, fmt.Errorf("journal: %w", err)
		}
		var sn snapshot
		if err := json.Unmarshal(raw, &sn); err != nil {
			return nil, info, fmt.Errorf("journal: snapshot %s: %w", name, err)
		}
		info.snapLastSeq = sn.LastSeq
		recs = append(recs, sn.Records...)
	}

	stop := false // a repaired segment drops everything after it
	var live []string
	for i, name := range segs {
		path := filepath.Join(dir, name)
		if stop {
			if j != nil {
				os.Remove(path)
			}
			continue
		}
		segRecs, goodBytes, segErr := scanSegment(path, i == len(segs)-1, &info)
		for _, r := range segRecs {
			if r.Seq > info.snapLastSeq {
				recs = append(recs, r)
			}
		}
		if segErr {
			stop = true
			if j != nil {
				if goodBytes == 0 {
					os.Remove(path)
					continue
				}
				if err := os.Truncate(path, goodBytes); err != nil {
					return nil, info, fmt.Errorf("journal: repair %s: %w", name, err)
				}
			}
		}
		live = append(live, path)
	}
	if j != nil {
		if len(live) > 0 {
			j.active = live[len(live)-1]
			j.segments = live[:len(live)-1]
			for _, p := range j.segments {
				if st, err := os.Stat(p); err == nil {
					j.allBytes += st.Size()
				}
			}
		}
	}
	return recs, info, nil
}

// scanSegment reads intact frames from one segment file.  It returns
// the records, the byte offset up to which the file is intact, and
// whether a bad frame was hit (torn tail or corruption).
func scanSegment(path string, last bool, info *ReplayInfo) ([]Record, int64, bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		info.ReplayErrors++
		return nil, 0, true
	}
	var recs []Record
	off := int64(0)
	for int64(len(raw))-off > 0 {
		rest := raw[off:]
		if len(rest) < frameHeader {
			// Partial header: a crash mid-append on the final segment,
			// corruption anywhere else.
			if last {
				info.TornTails++
			} else {
				info.ReplayErrors++
			}
			return recs, off, true
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n == 0 || n > maxFrame {
			info.ReplayErrors++
			return recs, off, true
		}
		if int64(len(rest)) < frameHeader+int64(n) {
			if last {
				info.TornTails++
			} else {
				info.ReplayErrors++
			}
			return recs, off, true
		}
		payload := rest[frameHeader : frameHeader+int64(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			if last && int64(len(rest)) == frameHeader+int64(n) {
				// Garbled final frame of the final segment: torn write.
				info.TornTails++
			} else {
				info.ReplayErrors++
			}
			return recs, off, true
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			info.ReplayErrors++
			return recs, off, true
		}
		recs = append(recs, r)
		off += frameHeader + int64(n)
	}
	return recs, off, false
}

// Replayed returns the records recovered when the journal was opened,
// in replay order.  The slice is released after the first call.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := j.replayed
	j.replayed = nil
	return r
}

// newSegmentLocked starts a fresh active segment named by the next
// sequence number.  Caller holds j.mu (or is still constructing j).
func (j *Journal) newSegmentLocked() error {
	if j.f != nil && j.segBytes == 0 {
		return nil // already at a fresh segment boundary
	}
	path := filepath.Join(j.dir, segName(j.nextSeq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.f != nil {
		j.f.Sync() //nolint:errcheck // rotation; the data was already fsync'd per append
		j.f.Close()
		j.segments = append(j.segments, j.active)
		j.allBytes += j.segBytes
	}
	j.f, j.active, j.segBytes = f, path, 0
	syncDir(j.dir)
	return nil
}

// Append frames, writes and fsyncs one record, rotating the segment
// afterwards if it grew past SegmentBytes.  It returns the record with
// its assigned sequence number.
func (j *Journal) Append(typ Type, job int, data []byte) (Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return Record{}, fmt.Errorf("journal: closed")
	}
	r := Record{Seq: j.nextSeq, Type: typ, Job: job, Data: json.RawMessage(data)}
	payload, err := json.Marshal(r)
	if err != nil {
		return Record{}, fmt.Errorf("journal: %w", err)
	}
	if len(payload) > maxFrame {
		return Record{}, fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	if _, err := j.f.Write(frame); err != nil {
		return Record{}, fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.m.FsyncErrors++
		return Record{}, fmt.Errorf("journal: fsync: %w", err)
	}
	j.nextSeq++
	j.segBytes += int64(len(frame))
	j.m.Appends++
	if j.segBytes >= j.opts.SegmentBytes {
		if err := j.newSegmentLocked(); err != nil {
			return Record{}, err
		}
	}
	return r, nil
}

// Compact folds the log down to the given live records: it rotates the
// active segment, writes a snapshot covering every sequence number
// assigned so far, then deletes the now-redundant segments and any
// older snapshots.  The caller supplies the records that must survive
// (live jobs' submitted/admitted/latest-checkpoint entries, in replay
// order, with their original sequence numbers).
func (j *Journal) Compact(live []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if err := j.newSegmentLocked(); err != nil {
		return err
	}
	cutoff := j.nextSeq - 1
	sn := snapshot{LastSeq: cutoff, Records: live}
	raw, err := json.Marshal(sn)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	final := filepath.Join(j.dir, snapName(cutoff))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, raw); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncDir(j.dir)
	// Everything with seq <= cutoff now lives in the snapshot: the old
	// segments and any older snapshot are garbage.
	for _, p := range j.segments {
		os.Remove(p)
	}
	j.segments = nil
	j.allBytes = 0
	entries, err := os.ReadDir(j.dir)
	if err == nil {
		for _, e := range entries {
			if isSnapName(e.Name()) && e.Name() != snapName(cutoff) {
				os.Remove(filepath.Join(j.dir, e.Name()))
			}
		}
	}
	j.m.Compactions++
	return nil
}

// LogBytes reports the bytes held by live segments (the compaction
// trigger input; the snapshot is excluded since compaction can't
// shrink it).
func (j *Journal) LogBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.allBytes + j.segBytes
}

// Metrics returns a snapshot of the journal's health counters.
func (j *Journal) Metrics() Metrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	m := j.m
	m.Bytes = j.allBytes + j.segBytes
	m.Segments = len(j.segments) + 1
	return m
}

// Close fsyncs and closes the active segment.  Appends after Close
// fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so renames/creates within it are durable.
// Best-effort: some platforms refuse to fsync directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck // best-effort
	d.Close()
}
