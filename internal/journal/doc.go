// Package journal is the durability substrate for the job scheduler:
// an append-only, fsync-per-append, CRC-framed write-ahead log of job
// lifecycle records with segment rotation and compacting snapshots.
//
// # Record stream
//
// The log is a sequence of records, each tagged with a monotonically
// increasing sequence number, a Type and a job id, carrying an opaque
// JSON payload owned by the writer:
//
//	Submitted  the job spec, as accepted at the API boundary
//	Admitted   resources reserved, the job started running
//	Checkpoint a pass-boundary manifest (the resume point)
//	Terminal   done / failed / canceled
//
// A job's life is the subsequence of its records; replaying the whole
// log left to right reconstructs every job's last known state.  A job
// with a Submitted record and no Terminal record is live: queued if it
// has no Admitted record, running (resumable from its latest
// Checkpoint, if any) otherwise.
//
// # On-disk format
//
// Records are framed as
//
//	[4B little-endian payload length][4B little-endian CRC32-IEEE][JSON payload]
//
// and appended to segment files named wal-<firstSeq>.log, fsync'd per
// append.  When the active segment passes Options.SegmentBytes the
// journal rotates to a fresh one.  Compact writes snap-<cutoff>.json —
// the caller-supplied live records plus the cutoff sequence number —
// via tmp-file + fsync + rename, then deletes the segments it
// subsumes.  Replay is snapshot records first, then segment records
// with seq > cutoff.
//
// # Crash tolerance
//
// Open repairs the log before use: a partial trailing frame (a crash
// mid-append) is truncated away and counted as a torn tail; a frame
// with a bad CRC or an implausible length stops replay at that point,
// truncates the segment there, and drops all later segments — after a
// corruption the ordering guarantee is gone, so nothing past it can be
// trusted.  Both outcomes are deterministic: the same bytes on disk
// always replay to the same record sequence.  Replay is the read-only
// variant (no truncation, no deletes) and is safe to run against a
// journal another process is appending to.
package journal
