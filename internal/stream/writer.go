package stream

import (
	"sync"

	"repro/internal/pdm"
)

// wjob is one unit of work for the flusher: either a staged slot to write
// out or a flush token to acknowledge.
type wjob struct {
	slot    int
	nblocks int
	addrs   []pdm.BlockAddr
	flush   chan error
}

// Writer performs write-behind: Write charges the request immediately (the
// point where the synchronous code would have issued it), copies the data
// into arena-backed staging, and returns while a background goroutine
// performs the physical transfer.  Requests are flushed in submission
// order.  The producer must Flush (or Close) before anything reads the
// written blocks, and must Close on every path to return the staging to
// the arena.
type Writer struct {
	a     *pdm.Array
	ring  []int64
	slots [][][]int64
	free  chan int
	jobs  chan wjob
	done  chan struct{}

	mu     sync.Mutex
	ferr   error // first flusher error
	err    error // sticky producer-side error
	closed bool
}

// NewWriter creates a Writer on a.  Write-behind depth comes from the
// array's pipeline configuration; depth 0 is fully synchronous.
func NewWriter(a *pdm.Array) (*Writer, error) {
	w := &Writer{a: a}
	depth := a.Pipeline().WriteBehind
	if depth == 0 {
		return w, nil
	}
	dxb := a.StripeWidth()
	ring, err := a.Arena().Alloc(depth * dxb)
	if err != nil {
		return nil, err
	}
	w.ring = ring
	w.slots = make([][][]int64, depth)
	w.free = make(chan int, depth)
	for i := 0; i < depth; i++ {
		slot := ring[i*dxb : (i+1)*dxb]
		views := make([][]int64, a.D())
		for j := range views {
			views[j] = slot[j*a.B() : (j+1)*a.B()]
		}
		w.slots[i] = views
		w.free <- i
	}
	w.jobs = make(chan wjob, depth)
	w.done = make(chan struct{})
	go w.drain()
	return w, nil
}

// drain is the flusher goroutine.  Queued jobs are coalesced into one
// vectored transfer per wakeup, amortizing the per-request overhead (one
// goroutine per disk) over everything the staging holds.  After the first
// transfer error it keeps consuming jobs and releasing slots — discarding
// the data — so the producer can never deadlock; the error surfaces at the
// next Write, Flush, or Close.
func (w *Writer) drain() {
	defer close(w.done)
	var addrs []pdm.BlockAddr
	var bufs [][]int64
	var held []int
	for job := range w.jobs {
		addrs, bufs, held = addrs[:0], bufs[:0], held[:0]
		var flush chan error
		if job.flush != nil {
			flush = job.flush
		} else {
			addrs = append(addrs, job.addrs...)
			bufs = append(bufs, w.slots[job.slot][:job.nblocks]...)
			held = append(held, job.slot)
			// Coalesce whatever else is already queued, stopping at a
			// flush token (it must be acknowledged only after these jobs
			// have landed, which the combined transfer guarantees).
		greedy:
			for {
				select {
				case next, ok := <-w.jobs:
					if !ok {
						break greedy
					}
					if next.flush != nil {
						flush = next.flush
						break greedy
					}
					addrs = append(addrs, next.addrs...)
					bufs = append(bufs, w.slots[next.slot][:next.nblocks]...)
					held = append(held, next.slot)
				default:
					break greedy
				}
			}
		}
		if len(addrs) > 0 && w.flusherErr() == nil {
			if err := w.a.TransferV(addrs, bufs, true); err != nil {
				w.mu.Lock()
				w.ferr = err
				w.mu.Unlock()
			}
		}
		for _, s := range held {
			w.free <- s
		}
		if flush != nil {
			flush <- w.flusherErr()
		}
	}
}

func (w *Writer) flusherErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ferr
}

// Write submits one vectored write of bufs[i] to addrs[i].  The request is
// charged before Write returns and the data is copied out of bufs, so the
// caller may immediately reuse both.  If the physical transfer later fails,
// the error surfaces on a subsequent Write, Flush, or Close.
func (w *Writer) Write(addrs []pdm.BlockAddr, bufs [][]int64) error {
	if w.err != nil {
		return w.err
	}
	// Abort before charging when the array's context is canceled — the
	// write-behind path must reject exactly where the synchronous WriteV
	// would, leaving no accounting trace for the rejected request.
	if err := w.a.CtxErr(); err != nil {
		w.err = err
		return err
	}
	if err := w.flusherErr(); err != nil {
		w.err = err
		return err
	}
	if w.jobs == nil { // synchronous mode
		if err := w.a.WriteV(addrs, bufs); err != nil {
			w.err = err
			return err
		}
		return nil
	}
	// Validate everything before charging, exactly like the synchronous
	// WriteV: a rejected request must leave no accounting trace.
	if err := w.a.ValidateV(addrs, bufs); err != nil {
		w.err = err
		return err
	}
	if len(addrs) == 0 {
		return nil
	}
	w.a.ChargeV(addrs, true)
	bps := w.a.D()
	stalled := false
	for i := 0; i < len(addrs); i += bps {
		j := i + bps
		if j > len(addrs) {
			j = len(addrs)
		}
		var slot int
		select {
		case slot = <-w.free:
		default:
			stalled = true
			slot = <-w.free
		}
		for k := i; k < j; k++ {
			copy(w.slots[slot][k-i], bufs[k])
		}
		// The caller may reuse addrs after Write returns; the job keeps its
		// own copy.
		sub := make([]pdm.BlockAddr, j-i)
		copy(sub, addrs[i:j])
		w.jobs <- wjob{slot: slot, nblocks: j - i, addrs: sub}
	}
	w.a.RecordWriteBehind(!stalled)
	return nil
}

// WriteFlat is Write from a flat buffer carved into B-key block views.
func (w *Writer) WriteFlat(addrs []pdm.BlockAddr, src []int64) error {
	return w.Write(addrs, splitBlocks(w.a, src))
}

// Flush blocks until every submitted request has reached the disks and
// returns the first transfer error, if any.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.jobs == nil {
		return nil
	}
	ack := make(chan error, 1)
	w.jobs <- wjob{flush: ack}
	if err := <-ack; err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes, stops the flusher, and returns the staging to the arena.
// It is idempotent; the first call's error is remembered.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	ferr := w.Flush()
	if w.jobs != nil {
		close(w.jobs)
		<-w.done
		w.a.Arena().Free(w.ring)
		w.ring = nil
	}
	if w.err == nil {
		w.err = ferr
	}
	return ferr
}
