package stream

import (
	"repro/internal/pdm"
)

// Async is the handle of one overlapped vectored request issued by
// ReadAsync: the request has already been charged; Wait joins the physical
// transfer.
type Async struct {
	done chan struct{}
	err  error
}

// ReadAsync issues one vectored read — addrs[i] into bufs[i] — charging it
// immediately (the point where the synchronous ReadV would have been
// called) and performing the transfer in the background when the array's
// pipeline configuration enables prefetch.  The caller must not touch bufs
// until Wait returns; it may keep consuming data the request does not
// alias, which is how the multiway merge overlaps lane refills with
// merging.  With prefetch 0 the transfer completes before ReadAsync
// returns.  Validation errors surface synchronously, before any charge.
func ReadAsync(a *pdm.Array, addrs []pdm.BlockAddr, bufs [][]int64) (*Async, error) {
	x := &Async{done: make(chan struct{})}
	if a.Pipeline().Prefetch == 0 {
		x.err = a.ReadV(addrs, bufs)
		close(x.done)
		return x, nil
	}
	if err := a.ValidateV(addrs, bufs); err != nil {
		return nil, err
	}
	a.ChargeV(addrs, false)
	go func() {
		defer close(x.done)
		x.err = a.TransferV(addrs, bufs, false)
	}()
	return x, nil
}

// Wait blocks until the transfer lands and returns its error.  It may be
// called any number of times.
func (x *Async) Wait() error {
	<-x.done
	return x.err
}
