package stream

import (
	"errors"
	"fmt"

	"repro/internal/pdm"
)

// ErrExhausted is returned by Reader.Fill after the last chunk has been
// consumed.
var ErrExhausted = errors.New("stream: read past the final chunk")

// batch is one slot-sized piece of a chunk travelling from the fetcher to
// the consumer.
type batch struct {
	slot    int // index into Reader.slots; -1 when err != nil or empty chunk
	nblocks int
	views   [][]int64       // zero-copy block views; nil on the copying path
	last    bool            // final piece of its chunk
	addrs   []pdm.BlockAddr // full chunk address list, set when last
	err     error
}

// Reader streams a fixed sequence of vectored read requests ("chunks") with
// prefetch: chunk t's addresses are produced by addrsOf(t), its data is
// fetched ahead on a background goroutine into arena-backed stripe buffers,
// and Fill hands chunks to the consumer in order, charging each one as it
// is consumed.
type Reader struct {
	a       *pdm.Array
	chunks  int
	addrsOf func(int) []pdm.BlockAddr
	next    int
	err     error

	// pipelined mode (nil channels mean synchronous):
	ring   []int64
	slots  [][][]int64 // slot -> block views
	zc     bool        // disks serve borrowed views; slots pace, not stage
	free   chan int
	filled chan batch
	quit   chan struct{}
	done   chan struct{}
	closed bool
}

// NewReader creates a Reader over chunks chunks whose block addresses are
// produced by addrsOf, which must be safe to call from the prefetch
// goroutine (it runs concurrently with the consumer; pure address
// arithmetic, as in all in-tree callers, is fine).  Prefetch depth comes
// from the array's pipeline configuration; depth 0 is fully synchronous.
func NewReader(a *pdm.Array, chunks int, addrsOf func(int) []pdm.BlockAddr) (*Reader, error) {
	r := &Reader{a: a, chunks: chunks, addrsOf: addrsOf}
	depth := a.Pipeline().Prefetch
	if depth == 0 || chunks == 0 {
		return r, nil
	}
	dxb := a.StripeWidth()
	ring, err := a.Arena().Alloc(depth * dxb)
	if err != nil {
		return nil, err
	}
	r.ring = ring
	r.slots = make([][][]int64, depth)
	r.free = make(chan int, depth)
	for i := 0; i < depth; i++ {
		slot := ring[i*dxb : (i+1)*dxb]
		views := make([][]int64, a.D())
		for j := range views {
			views[j] = slot[j*a.B() : (j+1)*a.B()]
		}
		r.slots[i] = views
		r.free <- i
	}
	r.zc = a.ZeroCopy()
	r.filled = make(chan batch, depth)
	r.quit = make(chan struct{})
	r.done = make(chan struct{})
	go r.fetch()
	return r, nil
}

// NewStripeReader returns a Reader streaming keys [start, start+n) of s
// sequentially in chunkKeys-key chunks (the last chunk may be shorter).
// start and chunkKeys must be multiples of B, n a multiple of B.
func NewStripeReader(s *pdm.Stripe, start, n, chunkKeys int) (*Reader, error) {
	b := s.Array().B()
	if chunkKeys <= 0 || chunkKeys%b != 0 {
		return nil, fmt.Errorf("stream: chunk of %d keys with B = %d", chunkKeys, b)
	}
	if _, err := s.AddrRange(start, n); err != nil {
		return nil, err
	}
	chunks := (n + chunkKeys - 1) / chunkKeys
	addrsOf := func(t int) []pdm.BlockAddr {
		off := t * chunkKeys
		cn := chunkKeys
		if off+cn > n {
			cn = n - off
		}
		addrs, err := s.AddrRange(start+off, cn)
		if err != nil {
			// The whole range was validated above; a per-chunk failure is
			// unreachable.
			panic(err)
		}
		return addrs
	}
	return NewReader(s.Array(), chunks, addrsOf)
}

// fetch is the prefetch goroutine: it walks the chunk sequence, transferring
// slot-sized pieces into the ring without charging them.  It grabs as many
// free slots as are immediately available and moves them in one vectored
// transfer, so the per-request overhead (one goroutine per disk) is
// amortized over everything the ring can hold.
func (r *Reader) fetch() {
	defer close(r.done)
	defer close(r.filled)
	bps := r.a.D() // blocks per slot
	var slots []int
	bufs := make([][]int64, 0, len(r.slots)*bps)
	for t := 0; t < r.chunks; t++ {
		addrs := r.addrsOf(t)
		if len(addrs) == 0 {
			if !r.send(batch{slot: -1, last: true, addrs: addrs}) {
				return
			}
			continue
		}
		for i := 0; i < len(addrs); {
			// One blocking slot acquisition, then take whatever else is
			// free (bounded by what the chunk still needs).
			slots = slots[:0]
			select {
			case s := <-r.free:
				slots = append(slots, s)
			case <-r.quit:
				return
			}
			need := (len(addrs) - i + bps - 1) / bps
		greedy:
			for len(slots) < need {
				select {
				case s := <-r.free:
					slots = append(slots, s)
				default:
					break greedy
				}
			}
			j := i + len(slots)*bps
			if j > len(addrs) {
				j = len(addrs)
			}
			var views [][]int64
			if r.zc {
				// Zero-copy backends serve the blocks as direct views, so
				// the ring slots only pace the prefetch window — no staging
				// transfer happens here.  Borrowing fails exactly where a
				// TransferV would (unwritten block, canceled context).
				var err error
				views, err = r.a.BorrowReadV(addrs[i:j])
				if err != nil {
					r.send(batch{slot: -1, err: err})
					return
				}
			} else {
				bufs = bufs[:0]
				for k := i; k < j; k++ {
					s := slots[(k-i)/bps]
					bufs = append(bufs, r.slots[s][(k-i)%bps])
				}
				if err := r.a.TransferV(addrs[i:j], bufs, false); err != nil {
					r.send(batch{slot: -1, err: err})
					return
				}
			}
			for si, s := range slots {
				lo := i + si*bps
				hi := lo + bps
				if hi > j {
					hi = j
				}
				bt := batch{slot: s, nblocks: hi - lo}
				if views != nil {
					bt.views = views[lo-i : hi-i]
				}
				if hi == len(addrs) {
					bt.last = true
					bt.addrs = addrs
				}
				if !r.send(bt) {
					return
				}
			}
			i = j
		}
	}
}

func (r *Reader) send(bt batch) bool {
	select {
	case r.filled <- bt:
		return true
	case <-r.quit:
		return false
	}
}

// Fill delivers the next chunk into bufs, whose concatenation receives the
// chunk's blocks in request order (bufs[i] must have length B and there
// must be exactly as many buffers as the chunk has blocks).  The chunk is
// charged on delivery, so stats and traces match the synchronous ReadV the
// caller replaced.
func (r *Reader) Fill(bufs [][]int64) error {
	if r.err != nil {
		return r.err
	}
	// A canceled array context aborts here even when the chunk is already
	// staged: the prefetched data was never charged, so the accounting
	// still matches an aborted synchronous execution.
	if err := r.a.CtxErr(); err != nil {
		r.err = err
		return err
	}
	if r.next >= r.chunks {
		return ErrExhausted
	}
	t := r.next
	if r.filled == nil { // synchronous mode
		if err := r.a.ReadV(r.addrsOf(t), bufs); err != nil {
			r.err = err
			return err
		}
		r.next++
		return nil
	}
	idx := 0
	stalled := false
	first := true
	for {
		var bt batch
		var ok bool
		if first {
			select {
			case bt, ok = <-r.filled:
			default:
				stalled = true
				bt, ok = <-r.filled
			}
			first = false
		} else {
			bt, ok = <-r.filled
		}
		if !ok {
			r.err = fmt.Errorf("stream: prefetcher ended early at chunk %d", t)
			return r.err
		}
		if bt.err != nil {
			r.err = bt.err
			return r.err
		}
		if bt.slot >= 0 {
			if idx+bt.nblocks > len(bufs) {
				r.err = fmt.Errorf("stream: chunk %d has more blocks than the %d buffers provided", t, len(bufs))
				return r.err
			}
			for k := 0; k < bt.nblocks; k++ {
				if len(bufs[idx+k]) != r.a.B() {
					r.err = pdm.ErrBadBlock
					return r.err
				}
				src := r.slots[bt.slot][k]
				if bt.views != nil {
					src = bt.views[k]
				}
				copy(bufs[idx+k], src)
			}
			idx += bt.nblocks
			r.free <- bt.slot
		}
		if bt.last {
			if idx != len(bufs) || idx != len(bt.addrs) {
				r.err = fmt.Errorf("stream: chunk %d has %d blocks, %d buffers provided", t, len(bt.addrs), len(bufs))
				return r.err
			}
			r.a.ChargeV(bt.addrs, false)
			r.a.RecordPrefetch(!stalled)
			r.next++
			return nil
		}
	}
}

// FillFlat is Fill into a flat buffer carved into B-key block views.
func (r *Reader) FillFlat(dst []int64) error {
	return r.Fill(splitBlocks(r.a, dst))
}

// Remaining returns the number of chunks not yet consumed.
func (r *Reader) Remaining() int { return r.chunks - r.next }

// Close stops the prefetcher and returns the ring to the arena.  It is safe
// to call mid-stream (e.g. when a pass aborts) and idempotent; prefetched
// but unconsumed chunks were never charged, so accounting still matches the
// aborted synchronous execution.
func (r *Reader) Close() {
	if r.closed {
		return
	}
	r.closed = true
	if r.filled == nil {
		return
	}
	close(r.quit)
	<-r.done
	r.a.Arena().Free(r.ring)
	r.ring = nil
}

func splitBlocks(a *pdm.Array, flat []int64) [][]int64 {
	b := a.B()
	bufs := make([][]int64, len(flat)/b)
	for i := range bufs {
		bufs[i] = flat[i*b : (i+1)*b]
	}
	return bufs
}
