package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pdm"
)

// newArray builds a small PDM with the given pipeline depths.
func newArray(t *testing.T, prefetch, writeBehind int) *pdm.Array {
	t.Helper()
	a, err := pdm.New(pdm.Config{
		D: 4, B: 8, Mem: 64,
		Pipeline: pdm.PipelineConfig{Prefetch: prefetch, WriteBehind: writeBehind},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// loadStripe creates a stripe holding 0..n-1.
func loadStripe(t *testing.T, a *pdm.Array, n int) *pdm.Stripe {
	t.Helper()
	s, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	if err := s.Load(data); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestReaderMatchesSynchronousAccounting(t *testing.T) {
	const n = 64 * 4
	for _, depth := range []int{0, 1, 2, 3} {
		t.Run(fmt.Sprintf("prefetch=%d", depth), func(t *testing.T) {
			a := newArray(t, depth, 0)
			s := loadStripe(t, a, n)
			a.ResetStats()
			a.EnableTrace()
			r, err := NewStripeReader(s, 0, n, 64)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			buf := make([]int64, 64)
			got := make([]int64, 0, n)
			for r.Remaining() > 0 {
				if err := r.FillFlat(buf); err != nil {
					t.Fatal(err)
				}
				got = append(got, buf...)
			}
			for i, k := range got {
				if k != int64(i) {
					t.Fatalf("key %d = %d", i, k)
				}
			}
			if err := r.FillFlat(buf); !errors.Is(err, ErrExhausted) {
				t.Fatalf("read past end: err = %v, want ErrExhausted", err)
			}
			st := a.Stats()
			// One pass of reads: n/(D·B) = 4*64/32 = 8 steps, 32 blocks.
			if st.ReadSteps != 8 || st.BlocksRead != 32 {
				t.Fatalf("stats = %+v, want 8 read steps / 32 blocks", st)
			}
			// Trace: one entry per chunk, regardless of pipelining.
			if got := len(a.Trace()); got != 4 {
				t.Fatalf("trace length = %d, want 4", got)
			}
			if hs := st.PrefetchHits + st.PrefetchStalls; depth > 0 && hs != 4 {
				t.Fatalf("prefetch hit+stall = %d, want 4", hs)
			} else if depth == 0 && hs != 0 {
				t.Fatalf("synchronous reader recorded prefetch counters: %+v", st)
			}
		})
	}
}

func TestWriterMatchesSynchronousAccounting(t *testing.T) {
	const n = 64 * 4
	for _, depth := range []int{0, 2} {
		t.Run(fmt.Sprintf("writebehind=%d", depth), func(t *testing.T) {
			a := newArray(t, 0, depth)
			dst, err := a.NewStripe(n)
			if err != nil {
				t.Fatal(err)
			}
			a.EnableTrace()
			w, err := NewWriter(a)
			if err != nil {
				t.Fatal(err)
			}
			buf := make([]int64, 64)
			for off := 0; off < n; off += 64 {
				for i := range buf {
					buf[i] = int64(off + i)
				}
				addrs, err := dst.AddrRange(off, 64)
				if err != nil {
					t.Fatal(err)
				}
				if err := w.WriteFlat(addrs, buf); err != nil {
					t.Fatal(err)
				}
				// The writer must have copied: clobber the buffer.
				for i := range buf {
					buf[i] = -1
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			st := a.Stats()
			if st.WriteSteps != 8 || st.BlocksWritten != 32 {
				t.Fatalf("stats = %+v, want 8 write steps / 32 blocks", st)
			}
			if got := len(a.Trace()); got != 4 {
				t.Fatalf("trace length = %d, want 4", got)
			}
			out, err := dst.Unload()
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range out {
				if k != int64(i) {
					t.Fatalf("key %d = %d after write-behind", i, k)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal("second Close not idempotent:", err)
			}
		})
	}
}

func TestPipeTransforms(t *testing.T) {
	const n = 64 * 8
	for _, cfg := range []pdm.PipelineConfig{{}, {Prefetch: 2, WriteBehind: 2}} {
		t.Run(fmt.Sprintf("%+v", cfg), func(t *testing.T) {
			a, err := pdm.New(pdm.Config{D: 4, B: 8, Mem: 64, Pipeline: cfg})
			if err != nil {
				t.Fatal(err)
			}
			src := loadStripe(t, a, n)
			dst, err := a.NewStripe(n)
			if err != nil {
				t.Fatal(err)
			}
			a.ResetStats()
			buf := a.Arena().MustAlloc(64)
			err = Pipe(src, dst, buf, func(off int, chunk []int64) error {
				for i := range chunk {
					chunk[i] *= 2
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			a.Arena().Free(buf)
			out, err := dst.Unload()
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range out {
				if k != int64(2*i) {
					t.Fatalf("key %d = %d, want %d", i, k, 2*i)
				}
			}
			st := a.Stats()
			if st.ReadSteps != 16 || st.WriteSteps != 16 {
				t.Fatalf("stats = %+v, want 16 read and 16 write steps (one pass)", st)
			}
		})
	}
}

// faultDisk wraps a Disk and fails a chosen block operation.
type faultDisk struct {
	pdm.Disk
	mu        sync.Mutex
	failRead  int // block offset to fail reads at, -1 to disable
	failWrite int
	boom      error
}

func (d *faultDisk) ReadBlock(off int, dst []int64) error {
	d.mu.Lock()
	fail := d.failRead == off
	d.mu.Unlock()
	if fail {
		return d.boom
	}
	return d.Disk.ReadBlock(off, dst)
}

func (d *faultDisk) WriteBlock(off int, src []int64) error {
	d.mu.Lock()
	fail := d.failWrite == off
	d.mu.Unlock()
	if fail {
		return d.boom
	}
	return d.Disk.WriteBlock(off, src)
}

func TestReaderSurfacesPrefetchError(t *testing.T) {
	boom := errors.New("boom")
	disks := make([]pdm.Disk, 4)
	for i := range disks {
		disks[i] = pdm.NewMemDisk(8)
	}
	fd := &faultDisk{Disk: disks[1], failRead: -1, failWrite: -1, boom: boom}
	disks[1] = fd
	a, err := pdm.NewWithDisks(pdm.Config{D: 4, B: 8, Mem: 64,
		Pipeline: pdm.PipelineConfig{Prefetch: 2}}, disks)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64 * 4
	s := loadStripe(t, a, n)
	// Fail a block in the third chunk: the error must arrive at the Fill of
	// that chunk (not deadlock, not crash the earlier chunks).
	fd.mu.Lock()
	fd.failRead = 4 // row 4 on disk 1 = block index 17 → chunk 2
	fd.mu.Unlock()
	r, err := NewStripeReader(s, 0, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	buf := make([]int64, 64)
	sawErr := false
	for i := 0; i < 4; i++ {
		if err := r.FillFlat(buf); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("chunk %d: err = %v, want the injected fault", i, err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("injected prefetch fault never surfaced")
	}
	// Sticky and still no deadlock.
	if err := r.FillFlat(buf); !errors.Is(err, boom) {
		t.Fatalf("error not sticky: %v", err)
	}
}

func TestWriterSurfacesFlushError(t *testing.T) {
	boom := errors.New("boom")
	disks := make([]pdm.Disk, 4)
	for i := range disks {
		disks[i] = pdm.NewMemDisk(8)
	}
	fd := &faultDisk{Disk: disks[1], failRead: -1, failWrite: 2, boom: boom}
	disks[1] = fd
	a, err := pdm.NewWithDisks(pdm.Config{D: 4, B: 8, Mem: 64,
		Pipeline: pdm.PipelineConfig{WriteBehind: 1}}, disks)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := a.NewStripe(64 * 4)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(a)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 64)
	var wErr error
	for off := 0; off < 64*4 && wErr == nil; off += 64 {
		addrs, err := dst.AddrRange(off, 64)
		if err != nil {
			t.Fatal(err)
		}
		wErr = w.WriteFlat(addrs, buf)
	}
	if cerr := w.Close(); wErr == nil {
		wErr = cerr
	}
	if !errors.Is(wErr, boom) {
		t.Fatalf("injected write fault never surfaced: %v", wErr)
	}
}

func TestReaderCloseMidStreamDoesNotLeakOrDeadlock(t *testing.T) {
	a := newArray(t, 3, 0)
	const n = 64 * 8
	s := loadStripe(t, a, n)
	r, err := NewStripeReader(s, 0, n, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 64)
	if err := r.FillFlat(buf); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close() // idempotent
	if got := a.Arena().InUse(); got != 0 {
		t.Fatalf("arena holds %d keys after Close, want 0", got)
	}
}

func TestConcurrentReaderWriterUnderRace(t *testing.T) {
	// One goroutine streams reads from src while another streams writes to
	// dst on the same array — the shape of every pipelined pass.  Run with
	// -race to check the shared accounting state.
	a, err := pdm.New(pdm.Config{D: 4, B: 8, Mem: 64,
		Pipeline: pdm.PipelineConfig{Prefetch: 2, WriteBehind: 2}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64 * 8
	src := loadStripe(t, a, n)
	dst, err := a.NewStripe(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		r, err := NewStripeReader(src, 0, n, 64)
		if err != nil {
			errs <- err
			return
		}
		defer r.Close()
		buf := make([]int64, 64)
		for r.Remaining() > 0 {
			if err := r.FillFlat(buf); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		w, err := NewWriter(a)
		if err != nil {
			errs <- err
			return
		}
		buf := make([]int64, 64)
		for off := 0; off < n; off += 64 {
			addrs, err := dst.AddrRange(off, 64)
			if err != nil {
				errs <- err
				return
			}
			if err := w.WriteFlat(addrs, buf); err != nil {
				errs <- err
				return
			}
		}
		if err := w.Close(); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.BlocksRead != n/8 || st.BlocksWritten != n/8 {
		t.Fatalf("stats = %+v, want %d blocks each way", st, n/8)
	}
}

func TestReadAsyncOverlapsAndCharges(t *testing.T) {
	for _, depth := range []int{0, 2} {
		a := newArray(t, depth, 0)
		s := loadStripe(t, a, 64)
		a.ResetStats()
		addrs, err := s.AddrRange(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([][]int64, len(addrs))
		flat := make([]int64, 64)
		for i := range bufs {
			bufs[i] = flat[i*8 : (i+1)*8]
		}
		x, err := ReadAsync(a, addrs, bufs)
		if err != nil {
			t.Fatal(err)
		}
		// Charged at issue, before Wait.
		if st := a.Stats(); st.ReadSteps != 2 {
			t.Fatalf("depth %d: read steps at issue = %d, want 2", depth, st.ReadSteps)
		}
		if err := x.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := x.Wait(); err != nil {
			t.Fatal("second Wait:", err)
		}
		for i, k := range flat {
			if k != int64(i) {
				t.Fatalf("depth %d: key %d = %d", depth, i, k)
			}
		}
	}
}

func TestReaderRejectsWrongBufferCount(t *testing.T) {
	a := newArray(t, 2, 0)
	s := loadStripe(t, a, 64)
	r, err := NewStripeReader(s, 0, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.FillFlat(make([]int64, 32)); err == nil {
		t.Fatal("short buffer accepted")
	}
}
