package stream

import (
	"fmt"

	"repro/internal/pdm"
)

// Pipe is the read-transform-write shape of every PDM pass: it streams src
// through transform into dst in chunks of len(buf) keys.  With pipelining
// configured on the array, chunk t+1 is prefetched and chunk t−1 is flushed
// while transform runs on chunk t; with a zero pipeline configuration it is
// exactly the synchronous loop it replaces.  transform receives the key
// offset of the chunk and may modify it in place (a nil transform copies).
// Both stripes must have equal length, a multiple of B; len(buf) must be a
// positive multiple of B.
func Pipe(src, dst *pdm.Stripe, buf []int64, transform func(off int, chunk []int64) error) error {
	a := src.Array()
	n := src.Len()
	if dst.Len() != n {
		return fmt.Errorf("stream: Pipe from %d keys into %d", n, dst.Len())
	}
	chunk := len(buf)
	if chunk <= 0 || chunk%a.B() != 0 {
		return fmt.Errorf("stream: Pipe buffer of %d keys with B = %d", chunk, a.B())
	}
	r, err := NewStripeReader(src, 0, n, chunk)
	if err != nil {
		return err
	}
	defer r.Close()
	w, err := NewWriter(a)
	if err != nil {
		return err
	}
	for off := 0; off < n; off += chunk {
		cn := chunk
		if off+cn > n {
			cn = n - off
		}
		if err := r.FillFlat(buf[:cn]); err != nil {
			w.Close() //nolint:errcheck // the read error takes precedence
			return err
		}
		if transform != nil {
			if err := transform(off, buf[:cn]); err != nil {
				w.Close() //nolint:errcheck // the transform error takes precedence
				return err
			}
		}
		addrs, err := dst.AddrRange(off, cn)
		if err != nil {
			w.Close() //nolint:errcheck // the range error takes precedence
			return err
		}
		if err := w.WriteFlat(addrs, buf[:cn]); err != nil {
			w.Close() //nolint:errcheck // the write error takes precedence
			return err
		}
	}
	return w.Close()
}
