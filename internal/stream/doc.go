// Package stream is the pipelined stripe-I/O layer between the pdm
// simulator and the algorithms: a Reader that prefetches upcoming chunks on
// a background goroutine while the caller consumes the current one, a
// Writer that stages completed chunks and flushes them write-behind, an
// Async handle for one overlapped vectored request, and a Pipe helper for
// the read-transform-write shape every PDM pass has.
//
// The layer is invisible to the PDM cost model.  Physical transfers run
// through Array.TransferV (uncharged) on background goroutines; each
// logical request is charged exactly once through Array.ChargeV at the
// point where the synchronous code would have issued it — Reader charges
// when the consumer takes a chunk, Writer when the producer pushes one — so
// statistics, pass counts, and I/O traces are bit-identical to unpipelined
// execution, which is what keeps the paper's accounting honest while the
// wall clock improves.
//
// Staging buffers come from the array's Arena: pipelining costs
// (Prefetch+WriteBehind)·D·B keys of internal memory, charged like any
// other buffer (the capacity formula in pdm grows by exactly that budget).
// With a zero pdm.PipelineConfig every constructor degenerates to the
// synchronous path with no goroutines and no extra memory.
//
// A Reader or Writer must be driven from a single goroutine; distinct
// Readers and Writers on one array may run concurrently.
package stream
