package plan

import (
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/pdm"
)

// Calibration prices the model: seconds per parallel I/O step (one block
// per disk) on each side, and seconds per key of in-memory compute.  A
// zero value is unusable; obtain one from DefaultCalibration (analytic
// nominal rates) or Calibrate (measured on the real backend).
type Calibration struct {
	// ReadStepSeconds and WriteStepSeconds are the effective wall cost of
	// one parallel I/O step — modeled block latency, transfer, and (for
	// file disks) syscall overhead included.
	ReadStepSeconds  float64
	WriteStepSeconds float64
	// SortSecondsPerKey is the in-memory compute rate: the wall cost per
	// key of one load's worth of sorting/merging on the configured pool.
	SortSecondsPerKey float64
	// Probed reports a measured calibration (false for the analytic
	// default); ProbeSeconds is what the one-shot probe cost.
	Probed       bool
	ProbeSeconds float64
}

// DefaultCalibration returns the analytic seed: the modeled block latency
// plus nominal per-word transfer and per-key compute rates.  Rankings
// under the default match rankings under any probe (the model is monotone
// in predicted words), so Choose uses it; only absolute seconds differ.
func DefaultCalibration(shape Shape) Calibration {
	var perWord float64
	switch shape.Backend {
	case BackendFile:
		perWord = 12e-9 // page-cache file I/O plus syscall and encode per block
	case BackendMmap:
		perWord = 4e-9 // page-cache copy through the mapping, no syscall
	default:
		perWord = 2e-9 // in-memory block store: one copy per word
	}
	step := shape.BlockLatency.Seconds() + float64(shape.B)*perWord + 5e-6
	sortRate := 60e-9 // comparison introsort: ~n·log n with branchy compares
	if shape.Kernel == KernelRadix {
		sortRate = 20e-9 // radix: a handful of branch-free passes per key
	}
	return Calibration{
		ReadStepSeconds:   step,
		WriteStepSeconds:  step,
		SortSecondsPerKey: sortRate,
	}
}

// ProbeConfig keys the calibration cache: everything that changes the
// measured rates, and nothing else (MachineConfig fields like Alpha or a
// specific scratch path do not).
type ProbeConfig struct {
	D, B         int
	Workers      int
	BlockLatency time.Duration
	Backend      Backend
	Kernel       Kernel
}

// probeStripes is the probe transfer length in stripes: long enough to
// amortize startup, short enough that a latency-modeled probe stays in the
// tens of milliseconds.
const probeStripes = 8

// calEntry is one cache slot: the probe runs inside the entry's once, so
// a slow probe (its duration scales with the modeled BlockLatency) never
// blocks calibrations for other shapes — only the map lookup holds the
// global lock.
type calEntry struct {
	once sync.Once
	cal  Calibration
}

var (
	calMu    sync.Mutex
	calCache = map[ProbeConfig]*calEntry{}
)

// Calibrate measures a Calibration for the given backend shape with a
// one-shot micro-probe — a tiny stripe store written and read back on a
// fresh array of the same geometry and disk kind, plus an in-memory sort
// on a pool of the same width — and caches it per ProbeConfig, so every
// machine (and every scheduler job) sharing a shape pays for the probe
// once per process.  Concurrent callers with the same shape share one
// probe; callers with different shapes probe in parallel.  On probe
// failure it falls back to the analytic default rather than failing the
// caller's sort.
func Calibrate(pc ProbeConfig) Calibration {
	calMu.Lock()
	e, ok := calCache[pc]
	if !ok {
		e = &calEntry{}
		calCache[pc] = e
	}
	calMu.Unlock()
	e.once.Do(func() {
		cal, err := probe(pc)
		if err != nil {
			cal = DefaultCalibration(Shape{
				Mem: pc.B * pc.B, B: pc.B, D: pc.D,
				BlockLatency: pc.BlockLatency, Backend: pc.Backend,
				Kernel: pc.Kernel,
			})
		}
		e.cal = cal
	})
	return e.cal
}

// ResetCalibrationCache drops every cached probe (tests use it to force
// remeasurement).
func ResetCalibrationCache() {
	calMu.Lock()
	defer calMu.Unlock()
	calCache = map[ProbeConfig]*calEntry{}
}

// probe builds the throwaway array and measures.
func probe(pc ProbeConfig) (cal Calibration, err error) {
	if pc.D < 1 || pc.B < 1 {
		return cal, fmt.Errorf("plan: bad probe geometry D = %d, B = %d", pc.D, pc.B)
	}
	t0 := time.Now()
	stripe := pc.D * pc.B
	cfg := pdm.Config{D: pc.D, B: pc.B, Mem: stripe, Workers: pc.Workers, Kernel: parKernel(pc.Kernel)}
	var disks []pdm.Disk
	var dir string
	if pc.Backend == BackendFile || pc.Backend == BackendMmap {
		dir, err = os.MkdirTemp("", "plan-probe-")
		if err != nil {
			return cal, err
		}
		defer os.RemoveAll(dir)
		if pc.Backend == BackendMmap {
			disks, err = pdm.NewMmapDisks(dir, pc.D, pc.B)
		} else {
			disks, err = pdm.NewFileDisks(dir, pc.D, pc.B)
		}
		if err != nil {
			return cal, err
		}
	} else {
		disks = pdm.NewMemDisks(pc.D, pc.B)
	}
	if pc.BlockLatency > 0 {
		for i, d := range disks {
			disks[i] = pdm.LatencyDisk{Disk: d, PerBlock: pc.BlockLatency}
		}
	}
	a, err := pdm.NewWithDisks(cfg, disks)
	if err != nil {
		return cal, err
	}
	defer a.Close()

	// I/O probe: one store of probeStripes rows, written then read.  Each
	// disk serves its blocks serially, so wall/rows is the per-step cost —
	// exactly what the model multiplies by predicted steps.
	s, err := a.NewStripe(probeStripes * stripe)
	if err != nil {
		return cal, err
	}
	defer s.Free()
	data := make([]int64, probeStripes*stripe)
	fillProbeKeys(data)
	// Warm the store first: the untimed load pays one-time growth cost
	// (truncate, mmap remaps) so the timed pass measures the steady-state
	// per-step rate the model multiplies by predicted steps.
	if err := s.Load(data); err != nil {
		return cal, err
	}
	tw := time.Now()
	if err := s.Load(data); err != nil {
		return cal, err
	}
	cal.WriteStepSeconds = time.Since(tw).Seconds() / probeStripes
	tr := time.Now()
	if _, err := s.Unload(); err != nil {
		return cal, err
	}
	cal.ReadStepSeconds = time.Since(tr).Seconds() / probeStripes

	// Compute probe: sort one buffer on the configured pool.  The per-key
	// rate prices every pass's in-memory work (run formation, merging,
	// shuffling) — coarse, but uniform across candidates.
	buf := make([]int64, 1<<15)
	fillProbeKeys(buf)
	tc := time.Now()
	a.Pool().SortKeys(buf)
	cal.SortSecondsPerKey = time.Since(tc).Seconds() / float64(len(buf))

	cal.Probed = true
	cal.ProbeSeconds = time.Since(t0).Seconds()
	return cal, nil
}

// fillProbeKeys fills buf with a deterministic xorshift sequence (no
// math/rand dependency, identical across runs).
func fillProbeKeys(buf []int64) {
	x := uint64(0x9e3779b97f4a7c15)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = int64(x >> 2)
	}
}
