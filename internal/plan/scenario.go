package plan

import (
	"fmt"

	"repro/internal/memsort"
)

// This file prices the query scenarios that avoid a full sort: top-K /
// quantile selection (one filtering pass over a sampled threshold window),
// external group-by (hash aggregation, one pass when the groups fit in
// memory, a partition round trip otherwise), and sorted-merge ingest
// (sort the new batch, then one StreamMerge pass over old + new).  The
// runtime (internal/scenario and the repro facade) uses the exact same
// formulas, so a plan's ReadSteps/WriteSteps are the steps a run charges.

// ScenarioPlan is the planner's answer for one query scenario, in the
// same pass currency as Candidate: steps are parallel I/O steps, passes
// are steps·stripe/PaddedN.
type ScenarioPlan struct {
	Kind     string // "topk", "quantile", "groupby", "ingest"
	Feasible bool
	Reason   string // why not, when infeasible

	// PaddedN is the scenario's accounting denominator: the padded words
	// the pass counts are relative to.
	PaddedN     int
	ReadSteps   int64
	WriteSteps  int64
	ReadPasses  float64
	WritePasses float64

	// Exact reports that ReadSteps/WriteSteps are step-exact predictions
	// (a non-fallback run charges exactly these).  Group-by partition
	// routes are floors, not promises.
	Exact bool

	// Sample and Budget expose the selection scenario's knobs: the client
	// sample size and the worst-case survivor budget the filter pass must
	// hold in memory.  Zero for groupby/ingest.
	Sample int
	Budget int

	// Route names the chosen strategy within the scenario ("filter",
	// "onepass", "partition", "merge", "fullsort" when the scenario
	// degenerates to sorting).
	Route string

	// FullSortAlg and FullSortReadPasses price the "just sort everything"
	// alternative the scenario is competing with (the chosen candidate's
	// prediction over the same keys).
	FullSortAlg        Alg
	FullSortReadPasses float64

	// UseScenario is the Auto decision: the scenario route costs strictly
	// fewer predicted read passes than the full sort.
	UseScenario bool
}

// SelectCap is the survivor capacity of the filter pass: one stripe of the
// arena streams the input, the rest holds survivors.
func SelectCap(mem, stripe int) int {
	c := mem - stripe
	if c < 0 {
		return 0
	}
	return c
}

// SelectSample is the deterministic client-side sample size for selecting
// rank r out of n: a Floyd–Rivest-style s = 16·n^(2/3), clamped to
// [256, n].  The sample is metadata (the coordinator samples the same way
// in the distributed sort); only the filter pass is charged I/O.
func SelectSample(n int) int {
	if n <= 256 {
		return n
	}
	s := 16 * icbrt(int64(n)*int64(n))
	if s < 256 {
		s = 256
	}
	if s > n {
		s = n
	}
	return s
}

// SelectDelta is the rank slack the threshold window allows around target
// rank r (1 ≤ r ≤ n): two binomial standard deviations of the sampled
// rank estimate plus the sample grid granularity, floored at 32.  With
// s = SelectSample(n) the true rank lands inside ±Δ with overwhelming
// probability; a miss is detected and falls back to the full sort.
func SelectDelta(n, r int) int {
	s := SelectSample(n)
	if s >= n {
		return 1 // exact: the sample is the input
	}
	sigma := memsort.Isqrt(int(int64(r) * int64(n-r) / int64(s)))
	delta := 2*sigma + n/s + 32
	return delta
}

// TopKBudget is the worst-case survivor count of a top-K filter pass: the
// K wanted keys plus the threshold window's slack.
func TopKBudget(n, k int) int {
	return k + 2*SelectDelta(n, k)
}

// QuantileBudget is the worst-case survivor count of a quantile filter
// pass: both window edges carry slack.
func QuantileBudget(n, r int) int {
	return 4*SelectDelta(n, r) + 64
}

// GroupCap is the in-memory aggregation capacity: distinct groups one
// memory load of accumulator state holds (key + accumulator + count ≈
// 4 words with hashing overhead).
func GroupCap(mem int) int {
	c := mem / 2
	if c < 1 {
		c = 1
	}
	return c
}

// padStripe pads n keys to a whole number of stripes, the scenario
// stripes' layout (streamed passes then charge exactly padded/stripe
// steps per pass).
func padStripe(n, stripe int) int {
	if n <= 0 {
		return 0
	}
	return memsort.CeilDiv(n, stripe) * stripe
}

// fullSortBaseline prices the "just sort everything" alternative: the
// chosen candidate's predicted read passes rescaled to the scenario's
// padded length, preferring the exact count when the geometry is regular.
func fullSortBaseline(shape Shape, w Workload) (Alg, float64, int) {
	alg, err := Choose(shape, w)
	if err != nil {
		return "", 0, 0
	}
	rep, err := Explain(shape, w, DefaultCalibration(shape))
	if err != nil {
		return "", 0, 0
	}
	c := rep.Candidate(alg)
	if c == nil || !c.Feasible {
		return "", 0, 0
	}
	read := c.ReadPasses
	if r, _, ok := ExactPasses(shape, w, alg); ok {
		read = r
	}
	return alg, read, c.PaddedN
}

// TopKPlan prices extracting the K smallest keys of n: one charged
// filtering pass at a sampled threshold, survivors sorted in memory, the
// K results written out — against the chosen full sort.
func TopKPlan(shape Shape, w Workload, k int) ScenarioPlan {
	n := w.N
	p := ScenarioPlan{Kind: "topk", Route: "filter"}
	stripe := shape.Stripe()
	p.PaddedN = padStripe(n, stripe)
	alg, sortRead, _ := fullSortBaseline(shape, w)
	p.FullSortAlg, p.FullSortReadPasses = alg, sortRead
	if k <= 0 || k > n {
		p.Reason = fmt.Sprintf("k = %d outside [1, %d]", k, n)
		return p
	}
	p.Sample = SelectSample(n)
	p.Budget = TopKBudget(n, k)
	cap := SelectCap(shape.Mem, stripe)
	if p.Budget > cap {
		p.Reason = fmt.Sprintf("survivor budget %d exceeds memory capacity %d", p.Budget, cap)
		p.Route = "fullsort"
		return p
	}
	kpad := memsort.CeilDiv(k, shape.B) * shape.B
	p.Feasible = true
	p.Exact = true
	p.ReadSteps = int64(p.PaddedN / stripe)
	p.WriteSteps = int64(memsort.CeilDiv(kpad/shape.B, shape.D))
	p.ReadPasses = float64(p.ReadSteps) * float64(stripe) / float64(p.PaddedN)
	p.WritePasses = float64(p.WriteSteps) * float64(stripe) / float64(p.PaddedN)
	p.UseScenario = alg != "" && p.ReadPasses < p.FullSortReadPasses
	return p
}

// QuantilePlan prices selecting the key of 1-indexed rank r out of n: one
// charged filtering pass keeping a window around the sampled rank, the
// answer read out of the sorted window.  No output stripe is written.
func QuantilePlan(shape Shape, w Workload, r int) ScenarioPlan {
	n := w.N
	p := ScenarioPlan{Kind: "quantile", Route: "filter"}
	stripe := shape.Stripe()
	p.PaddedN = padStripe(n, stripe)
	alg, sortRead, _ := fullSortBaseline(shape, w)
	p.FullSortAlg, p.FullSortReadPasses = alg, sortRead
	if r < 1 || r > n {
		p.Reason = fmt.Sprintf("rank %d outside [1, %d]", r, n)
		return p
	}
	p.Sample = SelectSample(n)
	p.Budget = QuantileBudget(n, r)
	cap := SelectCap(shape.Mem, stripe)
	if p.Budget > cap {
		p.Reason = fmt.Sprintf("survivor budget %d exceeds memory capacity %d", p.Budget, cap)
		p.Route = "fullsort"
		return p
	}
	p.Feasible = true
	p.Exact = true
	p.ReadSteps = int64(p.PaddedN / stripe)
	p.ReadPasses = float64(p.ReadSteps) * float64(stripe) / float64(p.PaddedN)
	p.UseScenario = alg != "" && p.ReadPasses < p.FullSortReadPasses
	return p
}

// GroupByPlan prices aggregating n records (pairWords words each: 1 for
// bare keys, 2 for key+value) into `groups` distinct groups: one charged
// read pass when the groups fit GroupCap(M), a hash-partition round trip
// (read + scatter write + per-partition read) when they fit the fanout's
// combined capacity, and the sort-then-scan route beyond that (a record
// sort carries the payloads; the aggregation scan rides on its output).
// Only the one-pass route is step-exact: partition padding depends on the
// hash split, and the sort route inherits the sort's own variability.
func GroupByPlan(shape Shape, n, groups, pairWords int) ScenarioPlan {
	p := ScenarioPlan{Kind: "groupby"}
	stripe := shape.Stripe()
	if pairWords != 1 && pairWords != 2 {
		p.Reason = fmt.Sprintf("pairWords = %d (want 1 or 2)", pairWords)
		return p
	}
	if n <= 0 {
		p.Reason = "empty input"
		return p
	}
	if groups <= 0 || groups > n {
		groups = n
	}
	p.PaddedN = padStripe(n*pairWords, stripe)
	cap := GroupCap(shape.Mem)
	// The sort-then-scan alternative: a record sort moving the payload
	// column (pairWords−1 words per record) with the keys.
	alg, sortRead, _ := fullSortBaseline(shape, Workload{N: n, PayloadWords: (pairWords - 1) * n})
	p.FullSortAlg, p.FullSortReadPasses = alg, sortRead
	p.Feasible = true
	switch {
	case groups <= cap:
		p.Route = "onepass"
		p.Exact = true
		p.ReadSteps = int64(p.PaddedN / stripe)
	case groups <= partitionCount(groups, shape)*cap:
		p.Route = "partition"
		parts := partitionCount(groups, shape)
		// One full read, the scatter write (plus up to one padding block
		// per partition), and the partition read-back.
		blocks := p.PaddedN / shape.B
		p.ReadSteps = int64(p.PaddedN/stripe) + int64(memsort.CeilDiv(blocks+parts, shape.D))
		p.WriteSteps = int64(memsort.CeilDiv(blocks+parts, shape.D))
	default:
		// More groups than one partition round trip can table: sort the
		// records and scan.  The prediction is the sort's (a floor).
		p.Route = "fullsort"
		if alg == "" {
			p.Feasible = false
			p.Reason = fmt.Sprintf("no candidate sorts %d records", n)
			return p
		}
		p.ReadPasses, p.WritePasses = sortRead, sortRead
		p.ReadSteps = int64(sortRead * float64(p.PaddedN) / float64(stripe))
		p.WriteSteps = p.ReadSteps
		return p
	}
	p.ReadPasses = float64(p.ReadSteps) * float64(stripe) / float64(p.PaddedN)
	p.WritePasses = float64(p.WriteSteps) * float64(stripe) / float64(p.PaddedN)
	p.UseScenario = alg != "" && p.ReadPasses < p.FullSortReadPasses
	return p
}

// PartitionFanout is the hash fanout the group-by partition route uses
// for this many groups — exported so the runtime counts partition sizes
// with exactly the fanout the plan priced.
func PartitionFanout(groups int, shape Shape) int {
	return partitionCount(groups, shape)
}

// partitionCount is the hash fanout of the group-by partition route:
// enough partitions that each holds ≤ GroupCap(M) expected groups,
// bounded by the block-buffer fanout M/B (one staged block per partition).
func partitionCount(groups int, shape Shape) int {
	maxF := shape.Mem / shape.B
	if maxF < 2 {
		maxF = 2
	}
	parts := memsort.CeilDiv(groups, GroupCap(shape.Mem))
	if parts < 2 {
		parts = 2
	}
	if parts > maxF {
		parts = maxF
	}
	return parts
}

// IngestPlan prices folding a sorted batch of `batch` keys into an
// already-sorted dataset of n keys: the planner-chosen sort of the batch
// alone, then one StreamMerge pass reading both sorted inputs and writing
// the merged output — against re-sorting all n+batch keys.
func IngestPlan(shape Shape, w Workload, batch int) ScenarioPlan {
	n := w.N
	p := ScenarioPlan{Kind: "ingest", Route: "merge"}
	stripe := shape.Stripe()
	full := w
	full.N = n + batch
	alg, sortRead, _ := fullSortBaseline(shape, full)
	p.FullSortAlg, p.FullSortReadPasses = alg, sortRead
	if n < 0 || batch <= 0 {
		p.Reason = fmt.Sprintf("bad sizes: dataset %d, batch %d", n, batch)
		return p
	}
	if 3*stripe > shape.Mem {
		p.Reason = fmt.Sprintf("merge needs 3 stripe buffers, D*B = %d too large for M = %d", stripe, shape.Mem)
		return p
	}
	// The batch sort, priced exactly when its geometry is regular.
	batchAlg, batchRead, _ := fullSortBaseline(shape, Workload{N: batch, Universe: w.Universe})
	if batchAlg == "" {
		p.Reason = fmt.Sprintf("no candidate sorts the %d-key batch", batch)
		return p
	}
	br, bw, exact := ExactPasses(shape, Workload{N: batch, Universe: w.Universe}, batchAlg)
	if !exact {
		br, bw = batchRead, batchRead
	}
	batchPadded, err := PadFor(shape.Mem, batchAlg, batch)
	if err != nil {
		p.Reason = err.Error()
		return p
	}
	padA := padStripe(n, stripe)
	padB := padStripe(batch, stripe)
	p.PaddedN = padA + padB
	p.Feasible = true
	p.Exact = exact
	mergeSteps := int64(p.PaddedN / stripe)
	p.ReadSteps = int64(br*float64(batchPadded)/float64(stripe)) + mergeSteps
	p.WriteSteps = int64(bw*float64(batchPadded)/float64(stripe)) + mergeSteps
	p.ReadPasses = float64(p.ReadSteps) * float64(stripe) / float64(p.PaddedN)
	p.WritePasses = float64(p.WriteSteps) * float64(stripe) / float64(p.PaddedN)
	p.UseScenario = alg != "" && p.ReadPasses < p.FullSortReadPasses
	return p
}

// ScenarioDiskEnvelope is the scratch-stripe budget a scenario job needs,
// in keys (words): inputs, outputs, and the partition stripes of the
// group-by route, with one stripe of slack like DiskEnvelope.
func ScenarioDiskEnvelope(kind string, shape Shape, n, batch, pairWords int) int {
	stripe := shape.Stripe()
	switch kind {
	case "topk", "quantile":
		return padStripe(n, stripe) + padStripe(n, stripe)/2 + 2*stripe
	case "groupby":
		// Pairs store + partition stripes (each padded by ≤ 1 block).
		w := padStripe(n*pairWords, stripe)
		return 2*w + shape.Mem + 2*stripe
	case "ingest":
		// Dataset + batch (sort envelope) + merged output.
		pad := padStripe(n, stripe) + padStripe(batch, stripe)
		alg, _, _ := fullSortBaseline(shape, Workload{N: batch})
		env := 0
		if alg != "" {
			if bp, err := PadFor(shape.Mem, alg, batch); err == nil {
				env = DiskEnvelope(alg, bp, stripe)
			}
		}
		return 2*pad + env + 2*stripe
	}
	return 0
}

// icbrt is the integer cube root (floor).
func icbrt(x int64) int {
	if x <= 0 {
		return 0
	}
	r := int64(1)
	for r*r*r <= x {
		r++
	}
	return int(r - 1)
}
