package plan

import "testing"

func TestSplitterSample(t *testing.T) {
	// Degenerate inputs.
	if got := SplitterSample(0, 4, 1); got != 0 {
		t.Fatalf("n=0: %d", got)
	}
	if got := SplitterSample(100, 0, 1); got != 0 {
		t.Fatalf("shards=0: %d", got)
	}
	// Clamped to n on small inputs.
	if got := SplitterSample(10, 4, 1); got != 10 {
		t.Fatalf("small n: sample %d, want n=10", got)
	}
	// Large inputs: at least one key per shard, well below n, and
	// monotone in every argument.
	n := 1 << 20
	base := SplitterSample(n, 4, 1)
	if base < 4 || base >= n {
		t.Fatalf("sample %d outside (shards, n)", base)
	}
	if more := SplitterSample(n, 8, 1); more <= base {
		t.Fatalf("more shards shrank the sample: %d <= %d", more, base)
	}
	if conf := SplitterSample(n, 4, 2); conf <= base {
		t.Fatalf("higher alpha shrank the sample: %d <= %d", conf, base)
	}
	if big := SplitterSample(n<<8, 4, 1); big < base {
		t.Fatalf("bigger n shrank the sample: %d < %d", big, base)
	}
	// alpha = 0 means 1 (Shape.Alpha's convention).
	if SplitterSample(n, 4, 0) != base {
		t.Fatal("alpha=0 should price as alpha=1")
	}
	// Determinism: a pure function of its inputs.
	if SplitterSample(n, 4, 1) != base {
		t.Fatal("sample size not deterministic")
	}
}
