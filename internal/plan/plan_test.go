package plan

import (
	"strings"
	"testing"
	"time"
)

// shapeFor is the test machine: M-key memory, B = √M, D = √M/4 (the
// paper's running example C = 4), alpha = 1.
func shapeFor(mem int) Shape {
	b := isqrt(mem)
	d := b / 4
	if d == 0 {
		d = 1
	}
	return Shape{Mem: mem, B: b, D: d, Alpha: 1}
}

func isqrt(n int) int {
	x := 0
	for (x+1)*(x+1) <= n {
		x++
	}
	return x
}

func choose(t *testing.T, shape Shape, w Workload) Alg {
	t.Helper()
	alg, err := Choose(shape, w)
	if err != nil {
		t.Fatalf("Choose(%+v): %v", w, err)
	}
	return alg
}

// TestChooseRegimeEdges pins the chosen algorithm at the paper's regime
// boundaries: N ≈ M (one-pass vs two-pass), N ≈ M²/B = M·√M (the
// three-pass capacity), and N ≈ M² (the seven-pass wall).
func TestChooseRegimeEdges(t *testing.T) {
	mem := 1024 // √M = 32, capacity(exp2) = 4·M at alpha 1
	shape := shapeFor(mem)
	sq := 32
	cases := []struct {
		name string
		n    int
		want Alg
	}{
		{"tiny", 1, OnePass},
		{"N=M-1", mem - 1, OnePass},
		{"N=M", mem, OnePass},
		{"N=M+1", mem + 1, Exp2},
		{"N=exp2 capacity", Capacity(mem, 1, Exp2), Exp2},
		{"N just past exp2", Capacity(mem, 1, Exp2) + 1, LMM3},
		{"N=M*sqrtM", mem * sq, LMM3},
		{"N just past M*sqrtM", mem*sq + 1, Seven},
		{"N=M*M", mem * mem, Seven},
	}
	for _, tc := range cases {
		if got := choose(t, shape, Workload{N: tc.n}); got != tc.want {
			t.Errorf("%s: Choose(N=%d) = %s, want %s", tc.name, tc.n, got, tc.want)
		}
	}
	if _, err := Choose(shape, Workload{N: mem*mem + 1}); err == nil {
		t.Error("N past M^2 should have no feasible algorithm")
	}
}

// TestChoosePaddingAware is the planner's reason to exist: between 4M and
// 8M keys on an M = 4096 machine, ExpectedTwoPass must pad to 8M (its run
// count divides √M), so its 2 passes move more words than ThreePass2's 3
// passes over the snug padding — the capacity-threshold planner picked the
// "fewer passes" loser.
func TestChoosePaddingAware(t *testing.T) {
	mem := 4096
	shape := shapeFor(mem)
	if got := choose(t, shape, Workload{N: 5 * mem}); got != LMM3 {
		t.Errorf("Choose(N=5M) = %s, want lmm3 (exp2 pads 5M to 8M)", got)
	}
	// At exactly 8M the padding penalty vanishes and two passes win again.
	if got := choose(t, shape, Workload{N: 8 * mem}); got != Exp2 {
		t.Errorf("Choose(N=8M) = %s, want exp2", got)
	}
	// The candidate table must expose the padding that drove the choice.
	r, err := Explain(shape, Workload{N: 5 * mem}, DefaultCalibration(shape))
	if err != nil {
		t.Fatal(err)
	}
	if c := r.Candidate(Exp2); c == nil || !c.Feasible || c.PaddedN != 8*mem {
		t.Errorf("exp2 candidate = %+v, want feasible with PaddedN = 8M", c)
	}
	if c := r.Candidate(LMM3); c.PaddedN != 5*mem {
		t.Errorf("lmm3 PaddedN = %d, want 5M", c.PaddedN)
	}
}

// TestUniverseRoutesToRadix: a universe hint always chooses the §7 path
// (SortInts and universe-bearing jobs never run a comparison sort), and
// the predicted pass count tracks the scatter depth.
func TestUniverseRoutesToRadix(t *testing.T) {
	shape := shapeFor(1024)
	r, err := Explain(shape, Workload{N: 64 * 1024, Universe: 1 << 20}, DefaultCalibration(shape))
	if err != nil {
		t.Fatal(err)
	}
	if r.Chosen != Radix {
		t.Fatalf("Chosen = %s, want radix", r.Chosen)
	}
	c := r.Candidate(Radix)
	if !c.Feasible || c.ReadPasses < 2 || c.ReadPasses > 5 {
		t.Fatalf("radix candidate = %+v, want feasible with a small pass count", c)
	}
	// Payloads force a comparison sort: radix infeasible, comparison chosen.
	r2, err := Explain(shape, Workload{N: 2048, PayloadWords: 4096}, DefaultCalibration(shape))
	if err != nil {
		t.Fatal(err)
	}
	if c := r2.Candidate(Radix); c.Feasible {
		t.Fatal("radix must be infeasible for payload-bearing workloads")
	}
	if r2.Chosen != Exp2 {
		t.Fatalf("records Chosen = %s, want exp2", r2.Chosen)
	}
	if c := r2.Candidate(Exp2); c.PermutePasses == 0 || c.PermuteLevels < 0 {
		t.Fatalf("records candidate missing permutation model: %+v", c)
	}
}

// TestRankingDeterministicUnderCalibration: the choice must not depend on
// what the probe measured — ranks are monotone in predicted words, so
// scaling any rate preserves the order (Auto stays deterministic across
// worker counts and probe noise).
func TestRankingDeterministicUnderCalibration(t *testing.T) {
	shape := shapeFor(4096)
	shape.BlockLatency = 3 * time.Millisecond
	cals := []Calibration{
		DefaultCalibration(shape),
		{ReadStepSeconds: 1e-3, WriteStepSeconds: 2e-3, SortSecondsPerKey: 1e-9},
		{ReadStepSeconds: 1e-6, WriteStepSeconds: 1e-6, SortSecondsPerKey: 5e-6},
	}
	for _, n := range []int{100, 4096, 5 * 4096, 20 * 4096, 100 * 4096} {
		want := ""
		for i, cal := range cals {
			r, err := Explain(shape, Workload{N: n}, cal)
			if err != nil {
				t.Fatal(err)
			}
			got := string(r.Chosen)
			if i == 0 {
				want = got
			} else if got != want {
				t.Fatalf("N=%d: choice flipped with calibration %d: %s vs %s", n, i, got, want)
			}
		}
	}
}

// TestTieBreakCanonical: ThreePass1 and ThreePass2 predict identically
// (same passes, same padding); the LMM variant must win the tie every
// time, and both mesh variants must rank directly behind their LMM twins.
func TestTieBreakCanonical(t *testing.T) {
	shape := shapeFor(1024)
	r, err := Explain(shape, Workload{N: 20 * 1024}, DefaultCalibration(shape))
	if err != nil {
		t.Fatal(err)
	}
	var order []Alg
	for _, c := range r.Candidates {
		if c.Feasible && (c.Alg == LMM3 || c.Alg == Mesh3) {
			order = append(order, c.Alg)
		}
	}
	if len(order) != 2 || order[0] != LMM3 || order[1] != Mesh3 {
		t.Fatalf("three-pass tie order = %v, want [lmm3 mesh3]", order)
	}
	if r.Chosen != LMM3 {
		t.Fatalf("Chosen = %s, want lmm3", r.Chosen)
	}
}

// TestPadFor covers the geometry rules the model inherits from the
// algorithms, including the one-pass stripe rounding.
func TestPadFor(t *testing.T) {
	mem := 1024
	cases := []struct {
		alg  Alg
		n    int
		want int
	}{
		{OnePass, 1, 32},
		{OnePass, 33, 64},
		{OnePass, 1024, 1024},
		{LMM3, 1500, 2048},
		{Exp2, 3 * 1024, 4 * 1024}, // run count must divide √M
		{Seven, 5 * 1024, 16 * 1024},
		{Radix, 100, 128},
	}
	for _, tc := range cases {
		got, err := PadFor(mem, tc.alg, tc.n)
		if err != nil || got != tc.want {
			t.Errorf("PadFor(%s, %d) = %d, %v; want %d", tc.alg, tc.n, got, err, tc.want)
		}
	}
	if _, err := PadFor(mem, OnePass, mem+1); err == nil {
		t.Error("one-pass PadFor past M must fail")
	}
	if _, err := PadFor(mem, LMM3, mem*32+1); err == nil {
		t.Error("lmm3 PadFor past M·√M must fail")
	}
}

// TestDiskEnvelopeOrdering: the per-algorithm envelopes must be tighter
// than or equal to the old per-family worst cases and ordered by family.
func TestDiskEnvelopeOrdering(t *testing.T) {
	padded, stripe := 1<<16, 1<<10
	one := DiskEnvelope(OnePass, padded, stripe)
	three := DiskEnvelope(LMM3, padded, stripe)
	super := DiskEnvelope(Seven, padded, stripe)
	if !(one < three && three < super) {
		t.Fatalf("envelope ordering broken: one=%d three=%d super=%d", one, three, super)
	}
	if three > 6*padded+2*stripe {
		t.Fatalf("three-pass envelope %d looser than the old family bound", three)
	}
}

// TestCalibrateCachesAndFallsBack: the probe returns positive rates, is
// cached per config, and scales with modeled latency.
func TestCalibrateCachesAndFallsBack(t *testing.T) {
	ResetCalibrationCache()
	pc := ProbeConfig{D: 4, B: 16, Workers: 1}
	cal := Calibrate(pc)
	if !cal.Probed || cal.ReadStepSeconds <= 0 || cal.WriteStepSeconds <= 0 || cal.SortSecondsPerKey <= 0 {
		t.Fatalf("probe calibration = %+v", cal)
	}
	if again := Calibrate(pc); again != cal {
		t.Fatalf("cache miss: %+v vs %+v", again, cal)
	}
	slow := Calibrate(ProbeConfig{D: 4, B: 16, Workers: 1, BlockLatency: 2 * time.Millisecond})
	if slow.ReadStepSeconds < time.Millisecond.Seconds() {
		t.Fatalf("latency-modeled probe read step %.6fs, want >= the modeled latency", slow.ReadStepSeconds)
	}
	// Invalid geometry falls back to the analytic default, never fails.
	bad := Calibrate(ProbeConfig{D: 0, B: 0})
	if bad.Probed || bad.ReadStepSeconds <= 0 {
		t.Fatalf("fallback calibration = %+v", bad)
	}
}

// TestExplainValidation rejects unusable questions with telling errors.
func TestExplainValidation(t *testing.T) {
	shape := shapeFor(1024)
	if _, err := Explain(shape, Workload{N: 0}, DefaultCalibration(shape)); err == nil {
		t.Error("N = 0 accepted")
	}
	bad := shape
	bad.B = 16 // not √M
	if _, err := Explain(bad, Workload{N: 10}, DefaultCalibration(bad)); err == nil ||
		!strings.Contains(err.Error(), "√M") {
		t.Errorf("bad geometry error = %v", err)
	}
	if _, err := Explain(shape, Workload{N: 10, PayloadWords: -1}, DefaultCalibration(shape)); err == nil {
		t.Error("negative payload words accepted")
	}
}

// TestPermutePlanDepth: the distribution depth grows with the store and
// the passes are 2·(levels+1).
func TestPermutePlanDepth(t *testing.T) {
	mem, b, stripe := 1024, 32, 256
	padded, levels, passes := PermutePlan(512, mem, b, stripe)
	if padded != 512 || levels != 0 || passes != 2 {
		t.Fatalf("small store plan = (%d, %d, %.1f)", padded, levels, passes)
	}
	_, levels2, passes2 := PermutePlan(64*mem, mem, b, stripe)
	if levels2 < 1 || passes2 != 2*float64(levels2+1) {
		t.Fatalf("large store plan = (%d, %.1f)", levels2, passes2)
	}
	if _, _, p := PermutePlan(0, mem, b, stripe); p != 0 {
		t.Fatal("empty store must plan zero passes")
	}
}
