package plan

import "math/bits"

// Splitter sampling for the distributed coordinator (internal/dist).  The
// paper's probabilistic algorithms (Sections 5 and 6) pick bucket splitters
// from a random sample with an oversampling factor that grows with the
// confidence parameter: a sample of Θ(k·α·log n) keys makes every one of k
// ranges carry at most a constant multiple of n/k keys with probability
// ≥ 1 − n^−α (the standard sample-sort balance bound the Lemma 4.2 window
// analysis instantiates).  The coordinator applies the same math with k =
// the worker count: shard sizes are balanced w.h.p., so per-node work — and
// the planner's per-shard cost predictions — stay near n/k.

// splitterOversample is the constant in the Θ(k·α·log n) sample bound.
const splitterOversample = 16

// SplitterSample returns how many keys to sample from an n-key input to
// choose shards−1 splitters with balanced ranges w.h.p. at confidence
// alpha (zero selects 1, matching Shape.Alpha's convention).  The result
// is clamped to [shards, n] and is a pure function of its inputs, so a
// coordinator re-planning the same job samples identically.
func SplitterSample(n, shards int, alpha float64) int {
	if n <= 0 || shards <= 0 {
		return 0
	}
	if alpha <= 0 {
		alpha = 1
	}
	log2n := bits.Len64(uint64(n)) // ⌈log₂(n+1)⌉
	s := int(float64(shards) * (alpha + 1) * splitterOversample * float64(log2n))
	if s < shards {
		s = shards
	}
	if s > n {
		s = n
	}
	return s
}
