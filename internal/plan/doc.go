// Package plan is the analytical query planner: it operationalizes the
// paper's pass-count analysis (every algorithm in Rajasekaran & Sen is
// "optimal" only in a specific (N, M, B, D) regime) as a cost model that,
// for a workload shape (key count, payload volume, integer universe,
// presortedness hint) and a machine shape (M, B, D, block latency, worker
// width, pipeline depths), predicts for every candidate algorithm:
//
//   - the padded input length its geometry forces (the silent cost the old
//     capacity-threshold planner ignored),
//   - read/write passes seeded from the paper's closed forms (§3–§7), with
//     an expected-fallback surcharge of M^−α·(fallback passes) for the
//     probabilistic algorithms,
//   - I/O words and parallel steps, including the payload permutation's
//     distribution levels for full-record sorts (internal/records),
//   - and wall time, by pricing steps and compute with a Calibration — a
//     one-shot micro-probe (tiny stripe transfers and an in-memory sort on
//     the real backend) cached per machine shape.
//
// Choice and pricing are deliberately split.  Choose — the Auto path —
// always ranks under the fixed analytic default calibration on the bare
// geometry, so for a given (N, M, B, D, α) it is a pure function: no
// probe, no worker-count or backend dependence, and exact ties (e.g.
// ThreePass1 vs ThreePass2: same passes, same padding) break by a fixed
// canonical order.  That keeps Auto deterministic — bit-identical
// scheduler-vs-dedicated and worker-count comparisons stay valid.
// Explain prices the same candidates with the measured calibration; on a
// latency-heavy shape its ranking can disagree with Choose at the margin
// (where the compute/I/O balance flips between a 2-pass candidate with
// heavier padding and a snug 3-pass one), which the facade leaves
// visible: repro.Machine.Explain pins Chosen to the Auto choice while the
// ranked table shows what the calibrated model would prefer.
//
// Accounting contract: the planner only predicts; it charges nothing.
// Predictions are in the paper's currency (passes over the padded length)
// plus seconds; the measured Report remains the source of truth, and
// cmd/benchjson records predicted-vs-measured drift per algorithm.
package plan
