package plan

import (
	"repro/internal/memsort"
)

// ExactPasses returns the measured-exact read/write pass counts for alg on
// this shape — the number a non-fallback forced run reports to the last
// bit — and whether the prediction is exact at all.
//
// basePasses is an expectation: it folds in the M^−α fallback surcharge
// and uses each algorithm's headline constant, which a run only meets on
// regular geometry.  Off that geometry the implementations pay real extra
// steps (vectored transfers that span fewer than D disks, column batches
// that straddle the stripe), so exactness is conditional:
//
//   - one: always exact — one read and one write step sequence, with the
//     final partial stripe still costing a whole step when the padded
//     length is not a stripe multiple.
//   - lmm3: exactly (3, 3) when l = N/M divides √M, so the (l, m)-merge's
//     unshuffle writes stay stripe-aligned.
//   - mesh3: exactly (3, 3) when the column pass is even — the G-column
//     batches map uniformly onto the disks (l ≡ 0 or G ≡ 0 mod D).
//   - exp2, mesh2e, exp3: exactly (2, 2) / (2, 2) / (3, 3) on runs that do
//     not fall back (FellBack reports the probabilistic event), provided
//     D < √M so the cleanup writes stay vectored.
//   - six, seven, sevenmesh: the outer merge moves l-block subsequences,
//     so when l < D three of its passes can only span l disks and cost
//     D/l× their ideal: exactly (3·D/l + 3) / (3·D/l + 4), bottoming out
//     at the paper's 6 / 7 once l ≥ D.  sevenmesh additionally needs its
//     inner mesh (over l·M-key superruns) to be even.
//   - radix: never exact — the MSD refinement adapts to the key
//     distribution (skewed inputs pay extra rounds), so only the
//     basePasses expectation exists.
//
// When exact is false the only guarantee is measured ≥ the ideal; callers
// (the pass-exactness property test, the scenario plans) must treat the
// prediction as a floor, not a promise.
func ExactPasses(shape Shape, w Workload, alg Alg) (read, write float64, exact bool) {
	padded, err := feasible(shape, w, alg)
	if err != nil {
		return 0, 0, false
	}
	sq := memsort.Isqrt(shape.Mem)
	d := shape.D
	switch alg {
	case OnePass:
		steps := memsort.CeilDiv(padded/shape.B, d)
		p := float64(steps) * float64(shape.Stripe()) / float64(padded)
		return p, p, true
	case LMM3:
		l := padded / shape.Mem
		if l >= 1 && sq%l == 0 {
			return 3, 3, true
		}
	case Mesh3:
		l := padded / shape.Mem
		if meshEven(sq, l, d) {
			return 3, 3, true
		}
	case Exp2:
		if d < sq {
			return 2, 2, true
		}
	case Mesh2e:
		if d < sq {
			return 2, 2, true
		}
	case Exp3:
		if d < sq {
			return 3, 3, true
		}
	case Six:
		if p, ok := outerMergePasses(padded, shape.Mem, sq, d, 3); ok {
			return p, p, true
		}
	case Seven:
		if p, ok := outerMergePasses(padded, shape.Mem, sq, d, 4); ok {
			return p, p, true
		}
	case SevenMesh:
		l := memsort.Isqrt(padded / shape.Mem)
		if p, ok := outerMergePasses(padded, shape.Mem, sq, d, 4); ok && meshEven(sq, l, d) {
			return p, p, true
		}
	}
	return 0, 0, false
}

// meshEven reports whether ThreePass1's column pass maps evenly onto the
// disks for an l·M-key mesh: the pass reads G = min(√M/l, √M) columns of
// l blocks per batch from per-column skewed stripes, and the batch covers
// every disk the same number of times iff l or G is a multiple of D.
func meshEven(sq, l, d int) bool {
	if l < 1 || d >= sq {
		return false
	}
	if l%d == 0 {
		return true
	}
	batch := sq / l
	if batch < 1 {
		batch = 1
	}
	if batch > sq {
		batch = sq
	}
	return batch%d == 0
}

// outerMergePasses is the exact count for the recursive six/seven-pass
// algorithms: base passes when the l-block subsequence stripes span the
// disks (l ≥ D), and 3·(D/l) + (base − 3) when they cannot (three of the
// outer merge's passes shrink to l-disk parallelism).  Irregular ratios
// (l ∤ D and D ∤ l) are not exact.
func outerMergePasses(padded, mem, sq, d, base int) (float64, bool) {
	l := memsort.Isqrt(padded / mem)
	if l < 1 || l*l*mem != padded {
		return 0, false
	}
	switch {
	case l >= d && l%d == 0:
		return float64(base + 3), true
	case l < d && d%l == 0:
		return float64(3*(d/l) + base), true
	}
	return 0, false
}
