package plan

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/memsort"
	"repro/internal/par"
)

// Alg names a candidate algorithm with the short spelling the CLI and the
// pdmd service already use (repro.ParseAlgorithm's table), plus "one" for
// the planner-introduced single-pass memory-load sort and "radix" for the
// Section 7 integer sort.
type Alg string

// The candidate algorithms, in canonical preference order: when two
// candidates predict identical cost (ThreePass1 vs ThreePass2 always do),
// the earlier one wins, which keeps Auto deterministic.
const (
	OnePass   Alg = "one"       // load-sort-store, N ≤ M
	Exp2      Alg = "exp2"      // §5 ExpectedTwoPass
	Mesh2e    Alg = "mesh2e"    // §3.2 two-pass mesh variant
	LMM3      Alg = "lmm3"      // §4 ThreePass2 (LMM)
	Mesh3     Alg = "mesh3"     // §3.1 ThreePass1 (mesh)
	Exp3      Alg = "exp3"      // §6 ExpectedThreePass
	Six       Alg = "six"       // §6.2 ExpectedSixPass
	Seven     Alg = "seven"     // §6.1 SevenPass
	SevenMesh Alg = "sevenmesh" // §6.2 Remark mesh variant
	Radix     Alg = "radix"     // §7 RadixSort (integer keys)
)

// Candidates is the canonical candidate order Explain evaluates.
var Candidates = []Alg{OnePass, Exp2, Mesh2e, LMM3, Mesh3, Exp3, Six, Seven, SevenMesh, Radix}

// Backend names the disk backend a shape runs on.  It only prices the
// per-block software overhead in the calibration — the PDM cost model
// (passes, steps, words) is backend-oblivious.
type Backend string

const (
	// BackendMem is the in-memory block store (tests, benchmarks).
	BackendMem Backend = "mem"
	// BackendFile is read/write-syscall file disks (pdm.FileDisk): each
	// block pays a syscall plus an encode/decode round through a staging
	// buffer.
	BackendFile Backend = "file"
	// BackendMmap is memory-mapped file disks (pdm.MmapDisk): each block
	// is a page-cache copy, with zero-copy views on the streaming paths.
	BackendMmap Backend = "mmap"
)

// Kernel names the in-memory sort kernel a shape runs its memory loads
// through (par.Kernel resolved to a concrete choice).  Like Backend it only
// prices compute in the calibration — pass counts, I/O words, and steps are
// kernel-oblivious, and output is bit-identical across kernels.
type Kernel string

const (
	// KernelComparison is the cache-aware comparison introsort plus
	// symmetric-merge combining (memsort.Keys / par symmetric merges).
	KernelComparison Kernel = "comparison"
	// KernelRadix is the LSD byte-radix kernel (memsort.RadixKeys and the
	// par parallel counting/scatter path).
	KernelRadix Kernel = "radix"
)

// Kernels is the canonical kernel order Explain's ranked table evaluates.
var Kernels = []Kernel{KernelComparison, KernelRadix}

// parKernel maps the planner's kernel name to the pool enum ("" prices the
// comparison kernel, the conservative default).
func parKernel(k Kernel) par.Kernel {
	if k == KernelRadix {
		return par.KernelRadix
	}
	return par.KernelComparison
}

// ChooseKernel is the Auto path's deterministic kernel choice: a pure
// function of the bare shape — the memory-load size alone — with no probe,
// worker-count, or backend dependence, mirroring how Choose picks the
// algorithm from fixed analytic rates.  It applies par.AutoKernel, the
// single Auto rule every layer shares, to M (the size of the loads run
// formation sorts).  Ties cannot arise: the rule is a threshold, and the
// canonical order in Kernels breaks any future tie the same way everywhere.
func ChooseKernel(shape Shape) Kernel {
	if par.AutoKernel(shape.Mem) == par.KernelRadix {
		return KernelRadix
	}
	return KernelComparison
}

// Shape is the machine half of a planning question.
type Shape struct {
	// Mem is M in keys (a perfect square), B the block size (= √M for the
	// paper's algorithms), D the disk count.
	Mem, B, D int
	// Alpha is the confidence parameter of the probabilistic algorithms.
	Alpha float64
	// Workers is the resolved compute-pool width.
	Workers int
	// BlockLatency is the modeled per-block device latency (pdm.LatencyDisk).
	BlockLatency time.Duration
	// Backend is the disk backend kind ("" means BackendMem).
	Backend Backend
	// Kernel is the resolved in-memory sort kernel ("" prices the
	// comparison kernel).
	Kernel Kernel
	// Prefetch and WriteBehind are the streaming depths; nonzero depths let
	// the wall model overlap I/O with compute.
	Prefetch, WriteBehind int
}

// Stripe returns D·B, the keys one fully parallel I/O step moves.
func (s Shape) Stripe() int { return s.D * s.B }

// pipelined reports whether transfers overlap computation.
func (s Shape) pipelined() bool { return s.Prefetch > 0 || s.WriteBehind > 0 }

// Workload is the workload half of a planning question.
type Workload struct {
	// N is the record (key) count.
	N int
	// PayloadWords is the total payload volume, in 8-byte words, a
	// full-record sort will move through the external permutation
	// (internal/records); zero plans a bare key sort.
	PayloadWords int
	// Universe, when positive, hints integer keys in [0, Universe) so the
	// Radix candidate becomes feasible.
	Universe int64
	// Presorted ∈ [0, 1] hints how much existing order the input carries
	// (1 = fully sorted).  The paper's algorithms are oblivious — passes
	// don't change — but in-memory run formation on presorted data runs
	// measurably faster, so the hint scales predicted compute seconds.
	// Because it shifts the compute/I/O balance it can reorder the
	// calibrated ranking at the margin; the facade pins its Chosen to the
	// Auto path's fixed-calibration choice, which ignores the hint.
	Presorted float64
}

// Candidate is one row of the ranked plan table.
type Candidate struct {
	Alg      Alg
	Feasible bool
	// Reason says why an infeasible candidate is out (capacity, geometry,
	// payload constraints).
	Reason string

	// PaddedN is the on-disk key length the candidate's geometry forces —
	// the cost the capacity-threshold planner ignored.
	PaddedN int
	// ReadPasses/WritePasses are the predicted pass counts over PaddedN,
	// seeded from the paper's closed forms plus the expected-fallback
	// surcharge M^−α·(fallback passes) for the probabilistic algorithms.
	ReadPasses, WritePasses float64
	// PermuteLevels and PermutePasses describe the payload permutation
	// (zero for bare key sorts): levels of distribution scatter, and
	// 2·(levels+1) passes over the padded payload store.
	PermuteLevels int
	PermutePasses float64
	// IOWords is the total predicted transfer volume (reads + writes,
	// keys + payload store) in words; Steps the parallel I/O steps.
	IOWords int64
	Steps   int64

	// Seconds predicted by the calibration: I/O, compute, and the wall
	// combining them (overlapped when the shape pipelines).
	IOSeconds      float64
	ComputeSeconds float64
	Seconds        float64
}

// Report is a ranked plan: every candidate, best first, plus the choice.
type Report struct {
	Shape    Shape
	Workload Workload
	Cal      Calibration
	// Candidates is sorted: feasible before infeasible, then by predicted
	// Seconds, ties by canonical order.
	Candidates []Candidate
	// Chosen is the cheapest feasible candidate under THIS report's
	// calibration, or Radix whenever the workload hints a universe
	// (integer jobs always take the §7 path).  The facade's Auto path
	// chooses with Choose — a fixed analytic calibration on the bare
	// geometry — so a calibrated report's ranking can disagree with the
	// algorithm Auto runs at the margin; repro.Machine.Explain pins its
	// Chosen to the Auto choice and leaves the disagreement visible in
	// the ranked table.
	Chosen Alg
}

// Candidate returns the row for alg (nil when absent).
func (r *Report) Candidate(alg Alg) *Candidate {
	for i := range r.Candidates {
		if r.Candidates[i].Alg == alg {
			return &r.Candidates[i]
		}
	}
	return nil
}

// Capacity returns the largest key count alg sorts on an M-key machine
// within its advertised pass count (the reliable regime at alpha for the
// probabilistic algorithms).  Radix has no capacity bound in the model and
// reports M².
func Capacity(mem int, alpha float64, alg Alg) int {
	sq := memsort.Isqrt(mem)
	switch alg {
	case OnePass:
		return mem
	case Mesh3, LMM3:
		return mem * sq
	case Exp2, Mesh2e:
		return core.ExpectedTwoPassRuns(mem, alpha) * mem
	case Exp3:
		l := largestGoodL(sq, func(l int) bool {
			return l*l*mem <= core.ExpectedThreePassCapacity(mem, alpha)
		})
		return l * l * mem
	case Six:
		n1 := core.ExpectedTwoPassRuns(mem, alpha)
		l := largestGoodL(sq, func(l int) bool { return l <= n1 })
		return l * l * mem
	case Seven, SevenMesh, Radix:
		return mem * mem
	default:
		return 0
	}
}

func largestGoodL(sq int, ok func(int) bool) int {
	best := 1
	for l := 1; l <= sq; l++ {
		if sq%l == 0 && ok(l) {
			best = l
		}
	}
	return best
}

// PadFor returns the smallest on-disk length ≥ n satisfying alg's geometry
// on an M-key machine.
func PadFor(mem int, alg Alg, n int) (int, error) {
	sq := memsort.Isqrt(mem)
	switch alg {
	case OnePass:
		if n > mem {
			return 0, fmt.Errorf("plan: %d keys exceed the one-pass capacity M = %d", n, mem)
		}
		return memsort.CeilDiv(n, sq) * sq, nil
	case Radix:
		return memsort.CeilDiv(n, sq) * sq, nil
	case Mesh3, LMM3, Exp2, Mesh2e:
		// N = l·M, and for the expected algorithms l must divide √M.
		l := memsort.CeilDiv(n, mem)
		if alg == Exp2 || alg == Mesh2e {
			for l <= sq && sq%l != 0 {
				l++
			}
		}
		if l > sq {
			return 0, fmt.Errorf("plan: %d keys exceed the %s capacity %d", n, alg, mem*sq)
		}
		return l * mem, nil
	case Exp3, Seven, Six, SevenMesh:
		// N = l²·M with l dividing √M.
		l := 1
		for l*l*mem < n {
			l++
		}
		for l <= sq && sq%l != 0 {
			l++
		}
		if l > sq {
			return 0, fmt.Errorf("plan: %d keys exceed the %s capacity %d", n, alg, mem*mem)
		}
		return l * l * mem, nil
	default:
		return 0, fmt.Errorf("plan: unknown algorithm %q", alg)
	}
}

// DiskEnvelope sizes a job's scratch reservation for alg, in keys: the
// measured per-algorithm high-water multiple of the padded input, one
// padded length of headroom, and two stripes of allocator slack.  These
// are tighter than the old per-family worst cases (the three-pass family
// peaks at 4× padded, so 5× bounds it; OnePass holds only input and
// output), which shortens head-of-line blocking in the scheduler; the
// superrun-recursive family keeps its measured 7×+1.  JobStatus's
// DiskFootprint is checked against the reservation in the scheduler tests.
func DiskEnvelope(alg Alg, padded, stripe int) int {
	mult := 0
	switch alg {
	case OnePass:
		mult = 2
	case Mesh3, LMM3, Exp2, Mesh2e:
		mult = 5
	case Exp3, Six, Seven, SevenMesh:
		mult = 8
	case Radix:
		mult = 6
	default:
		mult = 8
	}
	return mult*padded + 2*stripe
}

// PermutePlan predicts the payload permutation (internal/records) for
// `words` payload words on an (M, B, D) machine: the padded store length,
// the distribution depth, and the pass count 2·(levels+1) — each level is
// one sequential read and one sequential write of the store.
func PermutePlan(words, mem, b, stripe int) (paddedWords, levels int, passes float64) {
	if words <= 0 {
		return 0, 0, 0
	}
	paddedWords = memsort.CeilDiv(words, stripe) * stripe
	chunk := mem // destination chunk: one internal memory of words
	maxF := mem / b
	if maxF < 2 {
		maxF = 2
	}
	span := memsort.CeilDiv(paddedWords, chunk)
	for span > 1 {
		f := span
		if f > maxF {
			f = maxF
		}
		span = memsort.CeilDiv(span, f)
		levels++
	}
	return paddedWords, levels, 2 * float64(levels+1)
}

// basePasses returns the closed-form read-pass prediction for alg over a
// feasible input, including the expected-fallback surcharge for the
// probabilistic algorithms (failure probability ≤ M^−α, fallback passes on
// top of the wasted attempt).
func basePasses(shape Shape, w Workload, alg Alg) float64 {
	pf := math.Pow(float64(shape.Mem), -shape.Alpha) // ≤ M^−α failure mass
	switch alg {
	case OnePass:
		return 1
	case Mesh3, LMM3:
		return 3
	case Exp2, Mesh2e:
		return 2 + pf*3
	case Exp3:
		return 3 + pf*7
	case Six:
		return 6 + pf*7
	case Seven, SevenMesh:
		return 7
	case Radix:
		// Theorem 7.2: (1+ν)·log(N/M)/log(M/B) scatter rounds w.h.p., plus
		// the final read-sort-write pass; never more rounds than the key
		// width needs.
		r := shape.Mem / shape.B
		if r < 2 {
			r = 2
		}
		rounds := 0
		if w.N > shape.Mem {
			rounds = int(math.Ceil(math.Log(float64(w.N)/float64(shape.Mem)) / math.Log(float64(r))))
			if rounds < 1 {
				rounds = 1
			}
		}
		if w.Universe > 1 {
			keyBits := bits.Len64(uint64(w.Universe - 1))
			digit := bits.Len(uint(r)) - 1 // log₂(M/B), M/B a power of two
			if maxRounds := memsort.CeilDiv(keyBits, digit); rounds > maxRounds {
				rounds = maxRounds
			}
		}
		return float64(rounds) + 1
	default:
		return math.Inf(1)
	}
}

// feasible reports whether alg can run this workload at all, with the
// padded length when it can.
func feasible(shape Shape, w Workload, alg Alg) (int, error) {
	if alg == Radix {
		if w.Universe <= 0 {
			return 0, fmt.Errorf("integer keys only (no universe hint)")
		}
		if w.PayloadWords > 0 {
			return 0, fmt.Errorf("record payloads need a comparison sort")
		}
		if r := shape.Mem / shape.B; r < 2 || r&(r-1) != 0 {
			return 0, fmt.Errorf("needs M/B a power of two >= 2, got %d", r)
		}
		return PadFor(shape.Mem, alg, w.N)
	}
	padded, err := PadFor(shape.Mem, alg, w.N)
	if err != nil {
		return 0, err
	}
	if limit := Capacity(shape.Mem, shape.Alpha, alg); padded > limit {
		return 0, fmt.Errorf("padded length %d exceeds the reliable capacity %d", padded, limit)
	}
	return padded, nil
}

// evaluate builds one candidate row.
func evaluate(shape Shape, w Workload, cal Calibration, alg Alg) Candidate {
	c := Candidate{Alg: alg}
	padded, err := feasible(shape, w, alg)
	if err != nil {
		c.Reason = err.Error()
		return c
	}
	c.Feasible = true
	c.PaddedN = padded
	c.ReadPasses = basePasses(shape, w, alg)
	c.WritePasses = c.ReadPasses

	stripe := shape.Stripe()
	readWords := c.ReadPasses * float64(padded)
	writeWords := c.WritePasses * float64(padded)
	if w.PayloadWords > 0 {
		paddedW, levels, passes := PermutePlan(w.PayloadWords, shape.Mem, shape.B, stripe)
		c.PermuteLevels = levels
		c.PermutePasses = passes
		readWords += float64(levels+1) * float64(paddedW)
		writeWords += float64(levels+1) * float64(paddedW)
	}
	c.IOWords = int64(readWords + writeWords)
	readSteps := math.Ceil(readWords / float64(stripe))
	writeSteps := math.Ceil(writeWords / float64(stripe))
	c.Steps = int64(readSteps + writeSteps)

	// The seconds prediction covers what a caller's wall clock sees, which
	// includes the staging outside the charged passes: the input load (one
	// write pass), the output unload (one read pass), and the payload
	// store's load and gather-back.  IOWords/Steps stay in the charged
	// currency so they line up with the measured Report.
	stagingWords := float64(padded)
	if w.PayloadWords > 0 {
		paddedW, _, _ := PermutePlan(w.PayloadWords, shape.Mem, shape.B, stripe)
		stagingWords += float64(paddedW)
	}
	stagingSteps := math.Ceil(stagingWords / float64(stripe))
	c.IOSeconds = (readSteps+stagingSteps)*cal.ReadStepSeconds +
		(writeSteps+stagingSteps)*cal.WriteStepSeconds
	presorted := w.Presorted
	if presorted < 0 {
		presorted = 0
	}
	if presorted > 1 {
		presorted = 1
	}
	// Every key is handled in memory once per pass (run formation, merge,
	// shuffle); payload words move through partition buffers as raw copies,
	// cheaper per word than key compares.
	c.ComputeSeconds = cal.SortSecondsPerKey*readWords*(1-0.35*presorted) +
		0.25*cal.SortSecondsPerKey*(readWords+writeWords-2*c.ReadPasses*float64(padded))
	if shape.pipelined() {
		// Prefetch and write-behind overlap transfer with computation; the
		// wall is whichever side dominates.
		c.Seconds = math.Max(c.IOSeconds, c.ComputeSeconds)
	} else {
		c.Seconds = c.IOSeconds + c.ComputeSeconds
	}
	return c
}

// Explain evaluates every candidate and returns the ranked table.  It
// fails only when no candidate is feasible (N beyond every capacity).
func Explain(shape Shape, w Workload, cal Calibration) (*Report, error) {
	if err := validate(shape, w); err != nil {
		return nil, err
	}
	r := &Report{Shape: shape, Workload: w, Cal: cal}
	order := make(map[Alg]int, len(Candidates))
	for i, alg := range Candidates {
		order[alg] = i
		r.Candidates = append(r.Candidates, evaluate(shape, w, cal, alg))
	}
	// Rank: feasible first, then predicted seconds, ties canonical.  The
	// sort must be deterministic: seconds ties are exact for analytically
	// identical candidates because every rate is uniform across them.
	cands := r.Candidates
	sort.SliceStable(cands, func(i, j int) bool { return less(cands[i], cands[j], order) })
	if w.Universe > 0 {
		// Integer jobs take the §7 path regardless of rank: SortInts and
		// universe-bearing JobSpecs never run a comparison sort.
		if c := r.Candidate(Radix); c != nil && c.Feasible {
			r.Chosen = Radix
			return r, nil
		}
		return nil, fmt.Errorf("plan: radix infeasible for universe %d: %s", w.Universe, r.Candidate(Radix).Reason)
	}
	if !cands[0].Feasible {
		return nil, fmt.Errorf("plan: no feasible algorithm for %d keys on M = %d (largest capacity %d): %s",
			w.N, shape.Mem, shape.Mem*shape.Mem, cands[0].Reason)
	}
	r.Chosen = cands[0].Alg
	return r, nil
}

func less(a, b Candidate, order map[Alg]int) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if a.Feasible && a.Seconds != b.Seconds {
		return a.Seconds < b.Seconds
	}
	return order[a.Alg] < order[b.Alg]
}

func validate(shape Shape, w Workload) error {
	switch {
	case w.N <= 0:
		return fmt.Errorf("plan: N = %d, want > 0", w.N)
	case shape.Mem <= 0 || shape.B <= 0 || shape.D <= 0:
		return fmt.Errorf("plan: bad shape M = %d, B = %d, D = %d", shape.Mem, shape.B, shape.D)
	case w.PayloadWords < 0:
		return fmt.Errorf("plan: payload words = %d, want >= 0", w.PayloadWords)
	}
	if sq := memsort.Isqrt(shape.Mem); sq != shape.B || sq*sq != shape.Mem {
		return fmt.Errorf("plan: the paper's algorithms need B = √M (M = %d, B = %d)", shape.Mem, shape.B)
	}
	return nil
}

// Choose is the Auto path's deterministic choice: the ranking under the
// fixed analytic default calibration.  Given the same (Mem, B, D, Alpha)
// shape and workload it always returns the same algorithm — no probe, no
// worker-count or backend dependence — which is what keeps Auto runs
// bit-identical.  A calibrated Explain on a latency-heavy shape may rank
// a different candidate cheapest at the margin; callers wanting that
// candidate select it explicitly.
func Choose(shape Shape, w Workload) (Alg, error) {
	r, err := Explain(shape, w, DefaultCalibration(shape))
	if err != nil {
		return "", err
	}
	return r.Chosen, nil
}
