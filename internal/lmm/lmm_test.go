package lmm

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/memsort"
	"repro/internal/workload"
)

func sortedCopy(a []int64) []int64 {
	out := append([]int64(nil), a...)
	memsort.Keys(out)
	return out
}

func TestMergeTwoSequences(t *testing.T) {
	x := []int64{1, 4, 9, 16, 25, 36, 49, 64}
	y := []int64{2, 3, 5, 7, 11, 13, 17, 19}
	out, err := Merge([][]int64{x, y}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedCopy(append(append([]int64{}, x...), y...))
	if !slices.Equal(out, want) {
		t.Fatalf("Merge = %v, want %v", out, want)
	}
}

func TestMergeManySequences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		l := 2 + rng.Intn(6)
		seqLen := []int{4, 8, 16, 64}[rng.Intn(4)]
		m := []int{2, 4}[rng.Intn(2)]
		var all []int64
		seqs := make([][]int64, l)
		for i := range seqs {
			s := make([]int64, seqLen)
			for j := range s {
				s[j] = rng.Int63n(1000)
			}
			memsort.Keys(s)
			seqs[i] = s
			all = append(all, s...)
		}
		out, err := Merge(seqs, m)
		if err != nil {
			t.Fatalf("trial %d (l=%d m=%d len=%d): %v", trial, l, m, seqLen, err)
		}
		if !slices.Equal(out, sortedCopy(all)) {
			t.Fatalf("trial %d (l=%d m=%d len=%d): wrong merge", trial, l, m, seqLen)
		}
	}
}

func TestMergeEdgeCases(t *testing.T) {
	if out, err := Merge(nil, 2); err != nil || out != nil {
		t.Fatalf("empty merge = %v, %v", out, err)
	}
	single := []int64{1, 2, 3}
	out, err := Merge([][]int64{single}, 2)
	if err != nil || !slices.Equal(out, single) {
		t.Fatalf("single merge = %v, %v", out, err)
	}
	if _, err := Merge([][]int64{{1}, {2}}, 1); err == nil {
		t.Fatal("m=1 accepted")
	}
	if _, err := Merge([][]int64{{1, 2}, {3}}, 2); err == nil {
		t.Fatal("ragged sequences accepted")
	}
	if _, err := Merge([][]int64{{1, 2, 3}, {4, 5, 6}}, 2); err == nil {
		t.Fatal("length not divisible by m accepted")
	}
}

func TestSortVariousShapes(t *testing.T) {
	cases := []struct{ n, l, m, base int }{
		{64, 2, 2, 1},   // odd-even merge sort shape
		{81, 9, 3, 9},   // s²-way merge sort shape, s=3
		{256, 4, 4, 16}, // LMM with l=m=4
		{1024, 16, 4, 64},
	}
	for _, tc := range cases {
		data := workload.Perm(tc.n, int64(tc.n))
		want := sortedCopy(data)
		if err := Sort(data, tc.l, tc.m, tc.base); err != nil {
			t.Fatalf("Sort(n=%d l=%d m=%d): %v", tc.n, tc.l, tc.m, err)
		}
		if !slices.Equal(data, want) {
			t.Fatalf("Sort(n=%d l=%d m=%d): not sorted", tc.n, tc.l, tc.m)
		}
	}
}

func TestSortInputClasses(t *testing.T) {
	const n = 256
	inputs := map[string][]int64{
		"sorted":   workload.Sorted(n),
		"reversed": workload.ReverseSorted(n),
		"organ":    workload.Organ(n),
		"dups":     workload.FewDistinct(n, 4, 1),
		"zeroone":  workload.ZeroOneK(n, 100, 2),
	}
	for name, data := range inputs {
		t.Run(name, func(t *testing.T) {
			want := sortedCopy(data)
			if err := Sort(data, 4, 4, 16); err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(data, want) {
				t.Fatal("not sorted")
			}
		})
	}
}

func TestSortValidation(t *testing.T) {
	if err := Sort(make([]int64, 10), 1, 2, 1); err == nil {
		t.Fatal("l=1 accepted")
	}
	if err := Sort(make([]int64, 10), 2, 1, 1); err == nil {
		t.Fatal("m=1 accepted")
	}
	if err := Sort(make([]int64, 10), 2, 2, 0); err == nil {
		t.Fatal("base=0 accepted")
	}
	if err := Sort(make([]int64, 9), 2, 2, 1); err == nil {
		t.Fatal("non-divisible length accepted")
	}
}

func TestOddEvenMergeSortSpecialCase(t *testing.T) {
	for _, n := range []int{1, 2, 4, 32, 128} {
		data := workload.Perm(n, int64(n))
		want := sortedCopy(data)
		if err := OddEvenMergeSort(data); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(data, want) {
			t.Fatalf("n=%d not sorted", n)
		}
	}
	if err := OddEvenMergeSort(make([]int64, 3)); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if err := OddEvenMergeSort(nil); err != nil {
		t.Fatal("empty input rejected")
	}
}

func TestSSquareWayMergeSortSpecialCase(t *testing.T) {
	for _, tc := range []struct{ n, s int }{{81, 3}, {256, 4}, {625, 5}} {
		data := workload.Perm(tc.n, int64(tc.n))
		want := sortedCopy(data)
		if err := SSquareWayMergeSort(data, tc.s); err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(data, want) {
			t.Fatalf("n=%d s=%d not sorted", tc.n, tc.s)
		}
	}
	if err := SSquareWayMergeSort(make([]int64, 4), 1); err == nil {
		t.Fatal("s=1 accepted")
	}
}

func TestSortQuickProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 2 + rng.Intn(4)
		k := 1 + rng.Intn(4)
		n := l * l * k * 4
		data := workload.Perm(n, seed)
		want := sortedCopy(data)
		if err := Sort(data, l, 2+rng.Intn(3), l*k); err != nil {
			// Divisibility failures are acceptable rejections, not bugs.
			return true
		}
		return slices.Equal(data, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeZeroOneExhaustiveSmall(t *testing.T) {
	// 0-1 exhaustive check of the (l,m)-merge for a small geometry: l=2
	// sequences of length 8, every sorted 0-1 input pair.
	for z0 := 0; z0 <= 8; z0++ {
		for z1 := 0; z1 <= 8; z1++ {
			x := make([]int64, 8)
			y := make([]int64, 8)
			for i := z0; i < 8; i++ {
				x[i] = 1
			}
			for i := z1; i < 8; i++ {
				y[i] = 1
			}
			out, err := Merge([][]int64{x, y}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !memsort.IsSorted(out) {
				t.Fatalf("z0=%d z1=%d: unsorted merge", z0, z1)
			}
		}
	}
}
