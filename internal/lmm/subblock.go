package lmm

import (
	"fmt"

	"repro/internal/memsort"
)

// SubblockPermute is the new step of Chaudhry–Cormen–Hamon's subblock
// columnsort (the paper's Observation 6.1), inserted between steps 3 and 4:
// partition the r×s matrix into √s×√s subblocks and convert each subblock
// into a "column" of the transposed regime the algorithm is in at that
// point — in this matrix's own orientation, subblock q's s entries are
// spread one per column along row q — then sort the columns.
//
// Why this works: after steps 1–3 the 0-1 boundary is a monotone staircase,
// so at most ~2√s of the r subblocks are dirty.  A clean subblock becomes a
// constant row, adding the same amount to every column's zero count; each
// dirty subblock perturbs every column by at most one entry.  The column
// sort therefore leaves at most ~2√s dirty rows, which is what lets
// subblock columnsort run with r ≥ 4·s^{3/2} instead of r ≥ 2(s−1)².
func (m *ColumnsortMatrix) SubblockPermute() error {
	r, s := m.R, m.S
	sq := memsort.Isqrt(s)
	if sq*sq != s {
		return fmt.Errorf("lmm: subblock columnsort needs square s, got %d", s)
	}
	if r%sq != 0 {
		return fmt.Errorf("lmm: r = %d not divisible by sqrt(s) = %d", r, sq)
	}
	gridRows := r / sq // subblock rows per grid column
	out := make([]int64, len(m.Data))
	q := 0 // subblock counter, grid row-major
	for gr := 0; gr < gridRows; gr++ {
		for gc := 0; gc < sq; gc++ {
			// Flatten the √s×√s subblock at (gr, gc) in column-major
			// reading order and lay it across row q, one entry per column.
			e := 0
			for c := gc * sq; c < (gc+1)*sq; c++ {
				for row := gr * sq; row < (gr+1)*sq; row++ {
					out[e*r+q] = m.Data[c*r+row]
					e++
				}
			}
			q++
		}
	}
	copy(m.Data, out)
	m.SortColumns()
	return nil
}

// SubblockColumnsort runs the four-pass variant of Observation 6.1 /
// Chaudhry–Cormen–Hamon: columnsort steps 1–3, the subblock step, then
// steps 4–8.  It requires r ≥ 4·s^{3/2} (and square s), sorting r·s =
// up to M^{5/3}/4^{2/3} keys in the PDM setting.
func SubblockColumnsort(data []int64, r, s int) error {
	sq := memsort.Isqrt(s)
	if sq*sq != s {
		return fmt.Errorf("lmm: subblock columnsort needs square s, got %d", s)
	}
	if r < 4*s*sq {
		return fmt.Errorf("lmm: subblock columnsort needs r >= 4*s^1.5 = %d, got r = %d", 4*s*sq, r)
	}
	m, err := NewColumnsortMatrix(r, s, data, false)
	if err != nil {
		return err
	}
	m.SortColumns()                             // step 1
	m.Transpose()                               // step 2
	m.SortColumns()                             // step 3
	if err := m.SubblockPermute(); err != nil { // new step
		return err
	}
	m.Untranspose() // step 4
	m.SortColumns() // step 5
	m.ShiftSort()   // steps 6-8
	return nil
}
