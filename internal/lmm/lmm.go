package lmm

import (
	"fmt"

	"repro/internal/memsort"
	"repro/internal/mesh"
	"repro/internal/shuffle"
)

// Merge performs the (l,m)-merge of the given sorted sequences: unshuffle
// each input into m parts, recursively merge the part groups, shuffle the
// merged groups, and repair the bounded dirtiness with a rolling cleanup of
// window l·m (each key is within l·m of its sorted position after the
// shuffle — the bound the paper's Section 4 relies on).
//
// All sequences must have equal length divisible by m (or length < m, in
// which case the merge is done directly).
func Merge(seqs [][]int64, m int) ([]int64, error) {
	l := len(seqs)
	if l == 0 {
		return nil, nil
	}
	if m < 2 {
		return nil, fmt.Errorf("lmm: m = %d, want >= 2", m)
	}
	n := len(seqs[0])
	for i, s := range seqs {
		if len(s) != n {
			return nil, fmt.Errorf("lmm: sequence %d has %d keys, want %d", i, len(s), n)
		}
	}
	total := l * n
	if l == 1 {
		return append([]int64(nil), seqs[0]...), nil
	}
	// Base case: sequences short enough to merge directly with a loser
	// tree; this is where the PDM version's "only M records per merge"
	// condition lands.
	if n <= m {
		out := make([]int64, total)
		memsort.MultiMerge(out, seqs)
		return out, nil
	}
	if n%m != 0 {
		return nil, fmt.Errorf("lmm: sequence length %d not divisible by m = %d", n, m)
	}
	// Unshuffle each X_i into m parts; group j collects part j of every X_i.
	groups := make([][][]int64, m)
	for j := range groups {
		groups[j] = make([][]int64, l)
	}
	for i, s := range seqs {
		parts, err := shuffle.Unshuffle(s, m)
		if err != nil {
			return nil, err
		}
		for j, p := range parts {
			groups[j][i] = p
		}
	}
	// Recursively merge each group into L_j.
	merged := make([][]int64, m)
	for j := range groups {
		lj, err := Merge(groups[j], m)
		if err != nil {
			return nil, err
		}
		merged[j] = lj
	}
	// Shuffle L_1..L_m and clean the bounded dirtiness.
	z, err := shuffle.Shuffle(merged)
	if err != nil {
		return nil, err
	}
	if err := mesh.RollingClean(z, l*m); err != nil {
		return nil, fmt.Errorf("lmm: cleanup after shuffle: %w", err)
	}
	return z, nil
}

// Sort runs LMM sort: split the input into l equal subsequences, sort them
// recursively (directly below the base threshold), and (l,m)-merge the
// sorted runs.  len(data) must be divisible by l.
func Sort(data []int64, l, m, base int) error {
	if l < 2 || m < 2 {
		return fmt.Errorf("lmm: l = %d, m = %d, want >= 2", l, m)
	}
	if base < 1 {
		return fmt.Errorf("lmm: base = %d, want >= 1", base)
	}
	var rec func(a []int64) error
	rec = func(a []int64) error {
		if len(a) <= base {
			memsort.Keys(a)
			return nil
		}
		if len(a)%l != 0 {
			return fmt.Errorf("lmm: %d keys not divisible by l = %d", len(a), l)
		}
		run := len(a) / l
		seqs := make([][]int64, l)
		for i := range seqs {
			seqs[i] = a[i*run : (i+1)*run]
			if err := rec(seqs[i]); err != nil {
				return err
			}
		}
		out, err := Merge(seqs, m)
		if err != nil {
			return err
		}
		copy(a, out)
		return nil
	}
	return rec(data)
}

// OddEvenMergeSort sorts data with LMM's (2,2) special case — Batcher's
// odd-even merge sort.  len(data) must be a power of two.
func OddEvenMergeSort(data []int64) error {
	n := len(data)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("lmm: odd-even merge sort needs a power of two, got %d", n)
	}
	return Sort(data, 2, 2, 1)
}

// SSquareWayMergeSort sorts data with LMM's (s², s) special case —
// Thompson and Kung's s²-way merge sort.  len(data) must be a power of s².
func SSquareWayMergeSort(data []int64, s int) error {
	if s < 2 {
		return fmt.Errorf("lmm: s = %d, want >= 2", s)
	}
	return Sort(data, s*s, s, s*s)
}
