package lmm

import (
	"fmt"
	"math"

	"repro/internal/memsort"
)

// Columnsort state: an r×s matrix stored column-major (column c occupies
// data[c*r : (c+1)*r]), the layout Leighton's algorithm and the
// Chaudhry–Cormen PDM adaptation both use.

// ColumnsortMatrix holds an r×s column-major matrix during columnsort.
type ColumnsortMatrix struct {
	R, S int
	Data []int64 // column-major, len R*S
}

// NewColumnsortMatrix validates the geometry and wraps data.  Leighton's
// correctness condition is r ≥ 2(s−1)²; callers wanting the probabilistic
// variants may relax it via requireTall=false.
func NewColumnsortMatrix(r, s int, data []int64, requireTall bool) (*ColumnsortMatrix, error) {
	if r <= 0 || s <= 0 || len(data) != r*s {
		return nil, fmt.Errorf("lmm: %d keys cannot form an %dx%d matrix", len(data), r, s)
	}
	if r%2 != 0 {
		return nil, fmt.Errorf("lmm: columnsort needs even r, got %d", r)
	}
	if requireTall && r < 2*(s-1)*(s-1) {
		return nil, fmt.Errorf("lmm: columnsort needs r >= 2(s-1)^2 = %d, got r = %d", 2*(s-1)*(s-1), r)
	}
	return &ColumnsortMatrix{R: r, S: s, Data: data}, nil
}

// Col returns column c as a slice view.
func (m *ColumnsortMatrix) Col(c int) []int64 { return m.Data[c*m.R : (c+1)*m.R] }

// SortColumns sorts every column (steps 1, 3, 5, 7 of columnsort).
func (m *ColumnsortMatrix) SortColumns() {
	for c := 0; c < m.S; c++ {
		memsort.Keys(m.Col(c))
	}
}

// Transpose performs step 2: pick the entries up in column-major order and
// lay them down in row-major order of the same r×s shape.
func (m *ColumnsortMatrix) Transpose() {
	out := make([]int64, len(m.Data))
	for p, v := range m.Data {
		// p is the column-major linear index; destination is row-major
		// position p, i.e. row p/s, column p%s, at column-major index
		// (p%s)*r + p/s.
		out[(p%m.S)*m.R+p/m.S] = v
	}
	copy(m.Data, out)
}

// Untranspose performs step 4, the inverse permutation of Transpose:
// Transpose moves the entry at index q to index t(q) = (q mod s)·r + q÷s,
// so Untranspose moves it back, i.e. destination q reads from t(q).
func (m *ColumnsortMatrix) Untranspose() {
	out := make([]int64, len(m.Data))
	for p := range out {
		out[p] = m.Data[(p%m.S)*m.R+p/m.S]
	}
	copy(m.Data, out)
}

// ShiftSort performs steps 6–8 as one operation: shift the column-major
// order down by r/2 positions into an r×(s+1) matrix whose first half
// column is −∞ and last half column is +∞, sort all columns, and unshift.
func (m *ColumnsortMatrix) ShiftSort() {
	r, s := m.R, m.S
	h := r / 2
	ext := make([]int64, r*(s+1))
	for i := 0; i < h; i++ {
		ext[i] = math.MinInt64
	}
	copy(ext[h:], m.Data)
	for i := h + len(m.Data); i < len(ext); i++ {
		ext[i] = math.MaxInt64
	}
	for c := 0; c <= s; c++ {
		memsort.Keys(ext[c*r : (c+1)*r])
	}
	copy(m.Data, ext[h:h+len(m.Data)])
}

// Columnsort runs Leighton's eight-step columnsort on data interpreted as an
// r×s column-major matrix with r ≥ 2(s−1)², leaving data sorted in
// column-major order (Leighton [15]; the paper's baseline via Chaudhry–
// Cormen [7,9]).
func Columnsort(data []int64, r, s int) error {
	m, err := NewColumnsortMatrix(r, s, data, true)
	if err != nil {
		return err
	}
	m.SortColumns() // step 1
	m.Transpose()   // step 2
	m.SortColumns() // step 3
	m.Untranspose() // step 4
	m.SortColumns() // step 5
	m.ShiftSort()   // steps 6-8
	return nil
}

// ModifiedColumnsort is the Observation 5.1 variant: skip steps 1–2 and run
// steps 3–8 only.  For a random input permutation it sorts with high
// probability when r exceeds the Lemma 4.2 displacement scale; on failure
// (detected by a final sortedness check, the analogue of the paper's
// largest-key tracking) it reports ErrNotSorted so the caller can fall back
// to the full algorithm.
func ModifiedColumnsort(data []int64, r, s int) error {
	m, err := NewColumnsortMatrix(r, s, data, false)
	if err != nil {
		return err
	}
	m.SortColumns() // step 3
	m.Untranspose() // step 4
	m.SortColumns() // step 5
	m.ShiftSort()   // steps 6-8
	if !memsort.IsSorted(data) {
		return ErrNotSorted
	}
	return nil
}

// ErrNotSorted reports that a probabilistic columnsort variant failed on
// this input and the caller must fall back to a deterministic algorithm.
var ErrNotSorted = fmt.Errorf("lmm: probabilistic columnsort variant did not sort this input")
