package lmm

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/memsort"
	"repro/internal/workload"
)

func TestColumnsortSortsRandom(t *testing.T) {
	// r >= 2(s-1)^2.
	for _, tc := range []struct{ r, s int }{{8, 3}, {32, 4}, {50, 6}, {128, 8}} {
		n := tc.r * tc.s
		data := workload.Perm(n, int64(n))
		want := sortedCopy(data)
		if err := Columnsort(data, tc.r, tc.s); err != nil {
			t.Fatalf("r=%d s=%d: %v", tc.r, tc.s, err)
		}
		if !slices.Equal(data, want) {
			t.Fatalf("r=%d s=%d: not sorted", tc.r, tc.s)
		}
	}
}

func TestColumnsortZeroOneSweep(t *testing.T) {
	// 0-1 inputs at every zero count for one geometry; by the 0-1 principle
	// this certifies the oblivious permutation steps.
	r, s := 32, 4
	n := r * s
	for k := 0; k <= n; k += 7 {
		for rep := 0; rep < 2; rep++ {
			data := workload.ZeroOneK(n, k, int64(k*3+rep))
			if err := Columnsort(data, r, s); err != nil {
				t.Fatal(err)
			}
			if !memsort.IsSorted(data) {
				t.Fatalf("k=%d rep=%d: unsorted", k, rep)
			}
		}
	}
}

func TestColumnsortValidation(t *testing.T) {
	if err := Columnsort(make([]int64, 12), 4, 3); err == nil {
		t.Fatal("r < 2(s-1)^2 accepted")
	}
	if err := Columnsort(make([]int64, 10), 5, 2); err == nil {
		t.Fatal("odd r accepted")
	}
	if err := Columnsort(make([]int64, 10), 4, 3); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := NewColumnsortMatrix(0, 3, nil, false); err == nil {
		t.Fatal("zero r accepted")
	}
}

func TestTransposeUntransposeInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		r := 2 * (1 + rng.Intn(10))
		s := 1 + rng.Intn(8)
		data := workload.Perm(r*s, rng.Int63())
		orig := append([]int64(nil), data...)
		m, err := NewColumnsortMatrix(r, s, data, false)
		if err != nil {
			t.Fatal(err)
		}
		m.Transpose()
		m.Untranspose()
		if !slices.Equal(data, orig) {
			t.Fatalf("r=%d s=%d: untranspose(transpose) != id", r, s)
		}
	}
}

func TestTransposeSemantics(t *testing.T) {
	// 2x2 column-major [a,b,c,d]: transpose lays a,b,c,d down row-major,
	// giving column-major [a,c,b,d].
	data := []int64{10, 20, 30, 40}
	m, err := NewColumnsortMatrix(2, 2, data, false)
	if err != nil {
		t.Fatal(err)
	}
	m.Transpose()
	if !slices.Equal(data, []int64{10, 30, 20, 40}) {
		t.Fatalf("Transpose = %v", data)
	}
}

func TestShiftSortCleansHalfColumnDirt(t *testing.T) {
	// After steps 1-5 of columnsort every key is within r/2 of home in
	// column-major order; ShiftSort must finish the job.
	r, s := 16, 2
	data := workload.NearlySorted(r*s, r/2, 3)
	m, err := NewColumnsortMatrix(r, s, data, false)
	if err != nil {
		t.Fatal(err)
	}
	m.ShiftSort()
	if !memsort.IsSorted(data) {
		t.Fatal("ShiftSort failed on r/2-displaced input")
	}
}

func TestModifiedColumnsortRandomMostlySorts(t *testing.T) {
	// Observation 5.1: skipping steps 1-2 sorts random inputs w.h.p. when r
	// is comfortably above the displacement scale.
	r, s := 256, 4
	fails := 0
	for trial := 0; trial < 20; trial++ {
		data := workload.Perm(r*s, int64(trial))
		err := ModifiedColumnsort(data, r, s)
		switch {
		case err == nil:
			if !memsort.IsSorted(data) {
				t.Fatalf("trial %d: reported sorted but is not", trial)
			}
		case errors.Is(err, ErrNotSorted):
			fails++
		default:
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if fails > 2 {
		t.Fatalf("%d/20 random inputs failed", fails)
	}
}

func TestModifiedColumnsortAdversarialDetected(t *testing.T) {
	// All small keys in one "column" of the transposed reading defeats the
	// variant; it must report failure rather than emit unsorted output.
	r, s := 64, 4
	data := workload.ColumnLoaded(r*s, r) // huge displacement pattern
	err := ModifiedColumnsort(data, r, s)
	if err == nil && !memsort.IsSorted(data) {
		t.Fatal("unsorted output reported as success")
	}
}

func TestSubblockColumnsortSortsRandom(t *testing.T) {
	// r >= 4 s^1.5: s=4 -> r >= 32; s=16 -> r >= 256.
	for _, tc := range []struct{ r, s int }{{32, 4}, {64, 4}, {256, 16}} {
		n := tc.r * tc.s
		data := workload.Perm(n, int64(n))
		want := sortedCopy(data)
		if err := SubblockColumnsort(data, tc.r, tc.s); err != nil {
			t.Fatalf("r=%d s=%d: %v", tc.r, tc.s, err)
		}
		if !slices.Equal(data, want) {
			t.Fatalf("r=%d s=%d: not sorted", tc.r, tc.s)
		}
	}
}

func TestSubblockColumnsortZeroOneSweep(t *testing.T) {
	r, s := 32, 4
	n := r * s
	for k := 0; k <= n; k += 5 {
		data := workload.ZeroOneK(n, k, int64(k))
		if err := SubblockColumnsort(data, r, s); err != nil {
			t.Fatal(err)
		}
		if !memsort.IsSorted(data) {
			t.Fatalf("k=%d: unsorted", k)
		}
	}
}

func TestSubblockColumnsortValidation(t *testing.T) {
	if err := SubblockColumnsort(make([]int64, 96), 32, 3); err == nil {
		t.Fatal("non-square s accepted")
	}
	if err := SubblockColumnsort(make([]int64, 64), 16, 4); err == nil {
		t.Fatal("r < 4 s^1.5 accepted")
	}
}

func TestSubblockDirtyRowsBound(t *testing.T) {
	// The Observation 6.1 core claim: after steps 1-3 plus the subblock
	// step, at most ~2√s dirty rows remain on 0-1 inputs.
	r, s := 256, 16
	sq := 4
	n := r * s
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		data := workload.ZeroOneK(n, rng.Intn(n+1), rng.Int63())
		m, err := NewColumnsortMatrix(r, s, data, false)
		if err != nil {
			t.Fatal(err)
		}
		m.SortColumns()
		m.Transpose()
		m.SortColumns()
		if err := m.SubblockPermute(); err != nil {
			t.Fatal(err)
		}
		// Count dirty rows: row i is dirty if its s entries mix 0s and 1s.
		dirty := 0
		for i := 0; i < r; i++ {
			first := m.Data[i] // column 0, row i
			for c := 1; c < s; c++ {
				if m.Data[c*r+i] != first {
					dirty++
					break
				}
			}
		}
		if dirty > 2*sq+2 {
			t.Fatalf("trial %d: %d dirty rows after subblock step, want <= %d", trial, dirty, 2*sq+2)
		}
	}
}
