// Package lmm implements Rajasekaran's (l,m)-merge sort framework (LMM sort,
// reference [23] of the paper) in its in-memory reference form, together
// with the Leighton columnsort family the paper compares against.  Batcher's
// odd-even merge sort and Thompson–Kung's s²-way merge sort arise as the
// special cases (l,m) = (2,2) and (s²,s).
//
// internal/core schedules the same dataflow as accounted PDM passes; the
// test suite cross-checks the two implementations key for key.
package lmm
