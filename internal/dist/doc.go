// Package dist is the distributed-sort coordinator: it executes one sort
// job across N pdmd worker nodes, speaking only the workers' public HTTP
// API (internal/pdmdapi).  The parallelism story mirrors the paper's: the
// Parallel Disk Model's D independent disks become D independent worker
// machines, passes over the data remain the currency, and the splitter
// sampling reuses the paper's Θ(k·α·log n) oversampling bound
// (plan.SplitterSample) so shards are balanced w.h.p.
//
// One job runs in four phases:
//
//  1. Sample.  A deterministic stride sample of the input keys is sorted
//     and N−1 splitters are read off at the quantiles.
//  2. Partition + upload.  records.RangePartition assigns every record a
//     shard by key range ("equal key goes right", so ties never straddle
//     shards) preserving input order within each shard.  Shards ship to
//     their workers through the staged-upload protocol: bounded-concurrency
//     page uploads, each idempotent and independently retried, committed
//     into one worker job per shard.
//  3. Local sorts.  Each worker sorts its shard with its ordinary
//     scheduler stack — the coordinator adds nothing worker-side.
//  4. Merge.  The sorted shards stream back through the workers' paginated
//     output endpoints into a loser-tree merge (memsort.StreamMerge) with
//     lanes in splitter order.
//
// Determinism contract: the distributed output is bit-identical to the
// single-machine sort for any worker count.  Splitters are a pure function
// of the input; partition preserves order within shards; worker record
// sorts are stable; and the merge's lane-order tie-break concatenates the
// shards back in range order — so equal keys keep exactly the relative
// order a single stable sort would give them.
//
// Failure contract: any shard failure (worker down, job failed, timeout)
// cancels every job the run started on the surviving workers and returns
// an error; staged uploads that never committed are aborted, with the
// workers' TTL sweep as the backstop.  Cancellation of the caller's
// context fans out the same way.
package dist
