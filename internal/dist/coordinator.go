package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/plan"
	"repro/internal/records"
)

// Config describes one coordinator: the worker fleet and the knobs for the
// job it will run there.
type Config struct {
	// Workers are the pdmd base URLs (e.g. "http://host:8080"), one per
	// node.  One worker degenerates to a remote single-machine sort.
	Workers []string
	// Client is the HTTP client shared by all worker calls; nil selects
	// http.DefaultClient.  Per-request deadlines come from RequestTimeout,
	// not the client.
	Client *http.Client
	// PageKeys bounds one upload or download page in keys; <= 0 selects
	// 8192.  Smaller pages mean more requests but a smaller largest
	// message.
	PageKeys int
	// Concurrency bounds in-flight page uploads across all shards; <= 0
	// selects 4.
	Concurrency int
	// RequestTimeout is the hard deadline for one worker request; <= 0
	// selects 30 seconds.
	RequestTimeout time.Duration
	// Retries is how many times a transient worker failure is retried
	// (with exponential backoff) before the job fails; < 0 means none,
	// 0 selects 3.
	Retries int
	// Alpha is the splitter-sampling confidence (Θ(k·α·log n) sample
	// keys); <= 0 selects 1.
	Alpha float64
	// Alg, Kernel, Memory, Backend and BlockLatencyUS pass through to
	// every shard job's spec (zero values defer to each worker's
	// defaults).
	Alg            string
	Kernel         string
	Memory         int
	Backend        string
	BlockLatencyUS int64
	// Label prefixes every shard job's label on the workers.
	Label string
}

// Coordinator executes sort jobs across a fixed worker fleet.  It is safe
// for concurrent use; each Sort call is one distributed job.
type Coordinator struct {
	cfg     Config
	clients []*client
	sem     chan struct{} // bounds in-flight page uploads
	seq     atomic.Int64  // distinguishes this coordinator's upload ids
}

// New validates the config and builds a coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.PageKeys <= 0 {
		cfg.PageKeys = 8192
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 3
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 1
	}
	if cfg.Label == "" {
		cfg.Label = "dist"
	}
	c := &Coordinator{cfg: cfg, sem: make(chan struct{}, cfg.Concurrency)}
	for _, w := range cfg.Workers {
		c.clients = append(c.clients, &client{
			base:    w,
			http:    cfg.Client,
			timeout: cfg.RequestTimeout,
			retries: cfg.Retries,
		})
	}
	return c, nil
}

// ShardReport is one worker's slice of a distributed job.
type ShardReport struct {
	Worker    string    `json:"worker"`
	JobID     int       `json:"jobID"`
	N         int       `json:"n"`
	Algorithm string    `json:"algorithm"`
	Passes    float64   `json:"passes"`
	IO        pdm.Stats `json:"io"`
}

// Report aggregates a distributed job's accounting: per-shard passes and
// I/O as the workers measured them, combined into the fleet view.  Passes
// is the keys-weighted mean (the paper's currency, now per node);
// MaxPasses the critical path — with balanced shards the two are close,
// and their gap is the skew the splitter sampling is there to bound.
type Report struct {
	N              int           `json:"n"`
	Workers        int           `json:"workers"`
	SampleSize     int           `json:"sampleSize"`
	Splitters      []int64       `json:"splitters"`
	Shards         []ShardReport `json:"shards"`
	Passes         float64       `json:"passes"`
	MaxPasses      float64       `json:"maxPasses"`
	IO             pdm.Stats     `json:"io"`
	ElapsedSeconds float64       `json:"elapsedSeconds"`
}

// Sort runs one distributed key sort: sample, range-partition to the
// workers, per-node sorts, and a streaming merge of the sorted shards.
// The output is exactly the sorted input — bit-identical to a
// single-machine sort — for any worker count.
func (c *Coordinator) Sort(ctx context.Context, keys []int64) ([]int64, *Report, error) {
	out, _, rep, err := c.run(ctx, keys, nil)
	return out, rep, err
}

// SortRecords is Sort for full records: payloads ride with their keys, and
// the output (keys and payload order among equal keys) is bit-identical to
// the single-machine stable records sort.
func (c *Coordinator) SortRecords(ctx context.Context, keys []int64, payloads [][]byte) ([]int64, [][]byte, *Report, error) {
	if len(payloads) != len(keys) {
		return nil, nil, nil, fmt.Errorf("dist: %d payloads for %d keys", len(payloads), len(keys))
	}
	if payloads == nil {
		payloads = [][]byte{}
	}
	return c.run(ctx, keys, payloads)
}

// shardJob tracks one submitted shard for the cancellation fan-out.
type shardJob struct {
	worker int
	jobID  int
}

func (c *Coordinator) run(ctx context.Context, keys []int64, payloads [][]byte) ([]int64, [][]byte, *Report, error) {
	start := time.Now()
	n := len(keys)
	w := len(c.clients)
	rep := &Report{N: n, Workers: w}
	if n == 0 {
		if payloads != nil {
			return []int64{}, [][]byte{}, rep, nil
		}
		return []int64{}, nil, rep, nil
	}

	// Probe the fleet before moving any data: a worker that is down now
	// fails the job in one round-trip instead of after uploading shards.
	if err := c.probe(ctx); err != nil {
		return nil, nil, nil, err
	}

	// Choose splitters from a deterministic sample, partition, and drop
	// the shard index assignment of every record.
	splitters, sample := c.splitters(keys, w)
	rep.SampleSize = sample
	rep.Splitters = splitters
	shards := records.RangePartition(keys, splitters)

	// Upload and sort every non-empty shard concurrently; empty shards
	// (possible when the sample had few distinct keys) skip the worker
	// round-trip entirely and merge as exhausted lanes.
	jobSeq := c.seq.Add(1)
	statuses := make([]jobStatus, w)
	var (
		mu   sync.Mutex
		jobs []shardJob
	)
	track := func(worker, jobID int) {
		mu.Lock()
		jobs = append(jobs, shardJob{worker: worker, jobID: jobID})
		mu.Unlock()
	}
	gctx, gcancel := context.WithCancel(ctx)
	defer gcancel()
	errCh := make(chan error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		if len(shards[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.runShard(gctx, i, jobSeq, shards[i], keys, payloads, track)
			if err != nil {
				errCh <- fmt.Errorf("dist: shard %d on %s: %w", i, c.cfg.Workers[i], err)
				gcancel()
				return
			}
			statuses[i] = st
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		// One shard failed: cancel every job the others started so no
		// worker keeps sorting for a dead distributed job, then report
		// the first failure.
		c.cancelAll(jobs)
		if ctx.Err() != nil {
			err = fmt.Errorf("dist: %w", ctx.Err())
		}
		return nil, nil, nil, err
	default:
	}

	// Merge the sorted shards: a loser-tree streaming merge over the
	// workers' paginated output, lanes in splitter order so the
	// concatenation is globally sorted with single-machine tie-breaking.
	outKeys, outPayloads, err := c.merge(ctx, statuses, shards, payloads != nil)
	if err != nil {
		c.cancelAll(jobs)
		return nil, nil, nil, err
	}
	if len(outKeys) != n {
		return nil, nil, nil, fmt.Errorf("dist: merged %d keys, sharded %d", len(outKeys), n)
	}

	for i, st := range statuses {
		if st.ID == 0 {
			continue
		}
		sr := ShardReport{Worker: c.cfg.Workers[i], JobID: st.ID, N: st.N, Algorithm: st.Algorithm}
		if st.Report != nil {
			sr.Passes = st.Report.Passes
			sr.IO = st.Report.IO
			rep.Passes += st.Report.Passes * float64(st.N)
			rep.MaxPasses = max(rep.MaxPasses, st.Report.Passes)
			rep.IO = rep.IO.Add(st.Report.IO)
		}
		rep.Shards = append(rep.Shards, sr)
	}
	rep.Passes /= float64(n)
	rep.ElapsedSeconds = time.Since(start).Seconds()
	return outKeys, outPayloads, rep, nil
}

// probe health-checks every worker concurrently.
func (c *Coordinator) probe(ctx context.Context) error {
	errCh := make(chan error, len(c.clients))
	var wg sync.WaitGroup
	for i, cl := range c.clients {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			h, err := cl.health(ctx)
			if err != nil {
				errCh <- fmt.Errorf("dist: worker %s: %w", c.cfg.Workers[i], err)
				return
			}
			if h.Status != "ok" {
				errCh <- fmt.Errorf("dist: worker %s reports status %q", c.cfg.Workers[i], h.Status)
			}
		}(i, cl)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return err
	default:
		return nil
	}
}

// splitters picks w−1 range splitters from a deterministic stride sample.
// The sample size follows the paper's Θ(k·α·log n) oversampling bound
// (plan.SplitterSample), so shard sizes are balanced w.h.p. for random
// inputs; determinism (same input ⇒ same splitters ⇒ same shard
// assignment) is what lets a re-run reproduce a job exactly.
func (c *Coordinator) splitters(keys []int64, w int) ([]int64, int) {
	if w <= 1 {
		return nil, 0
	}
	n := len(keys)
	s := plan.SplitterSample(n, w, c.cfg.Alpha)
	sample := make([]int64, s)
	for i := range sample {
		sample[i] = keys[i*n/s]
	}
	slices.Sort(sample)
	splitters := make([]int64, w-1)
	for i := range splitters {
		splitters[i] = sample[(i+1)*s/w]
	}
	return splitters, s
}

// runShard ships one shard to its worker through the staged-upload
// protocol — bounded-concurrency page uploads, each independently retried
// — commits it into a job, and polls that job to completion.  track is
// called as soon as the job exists so a failure elsewhere can cancel it.
func (c *Coordinator) runShard(ctx context.Context, worker int, jobSeq int64, shard []int, keys []int64, payloads [][]byte, track func(worker, jobID int)) (jobStatus, error) {
	cl := c.clients[worker]
	uploadID, err := c.createUpload(ctx, cl, jobSeq, worker)
	if err != nil {
		return jobStatus{}, err
	}

	// Gather the shard's keys (and payloads) in partition order and cut
	// them into pages.
	shardKeys := make([]int64, len(shard))
	for i, idx := range shard {
		shardKeys[i] = keys[idx]
	}
	var shardPayloads [][]byte
	if payloads != nil {
		shardPayloads = make([][]byte, len(shard))
		for i, idx := range shard {
			shardPayloads[i] = payloads[idx]
		}
	}
	pageKeys := c.cfg.PageKeys
	pages := (len(shard) + pageKeys - 1) / pageKeys

	uctx, ucancel := context.WithCancel(ctx)
	defer ucancel()
	errCh := make(chan error, pages)
	var wg sync.WaitGroup
	for seq := 0; seq < pages; seq++ {
		wg.Add(1)
		go func(seq int) {
			defer wg.Done()
			select {
			case c.sem <- struct{}{}:
				defer func() { <-c.sem }()
			case <-uctx.Done():
				return
			}
			lo, hi := seq*pageKeys, min((seq+1)*pageKeys, len(shardKeys))
			var pp [][]byte
			if shardPayloads != nil {
				pp = shardPayloads[lo:hi]
			}
			if err := cl.uploadPage(uctx, uploadID, seq, shardKeys[lo:hi], pp); err != nil {
				errCh <- err
				ucancel()
			}
		}(seq)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		c.abandonUpload(cl, uploadID)
		return jobStatus{}, fmt.Errorf("upload %s: %w", uploadID, err)
	default:
	}

	st, err := cl.uploadCommit(ctx, uploadID, jobSpec{
		Alg:            c.cfg.Alg,
		Kernel:         c.cfg.Kernel,
		Memory:         c.cfg.Memory,
		Backend:        c.cfg.Backend,
		BlockLatencyUS: c.cfg.BlockLatencyUS,
		KeepKeys:       true,
		Label:          fmt.Sprintf("%s/shard%d", c.cfg.Label, worker),
	})
	if err != nil {
		c.abandonUpload(cl, uploadID)
		return jobStatus{}, fmt.Errorf("commit %s: %w", uploadID, err)
	}
	track(worker, st.ID)
	return c.await(ctx, cl, st.ID)
}

// createUpload registers a fresh staged upload.  The id is derived from
// the coordinator's job sequence; if a previous coordinator against the
// same worker already committed that id, the 409 re-salts rather than
// failing the job.
func (c *Coordinator) createUpload(ctx context.Context, cl *client, jobSeq int64, worker int) (string, error) {
	for salt := 0; ; salt++ {
		id := fmt.Sprintf("%s-j%d-w%d", c.cfg.Label, jobSeq, worker)
		if salt > 0 {
			id = fmt.Sprintf("%s-r%d", id, salt)
		}
		err := cl.uploadCreate(ctx, id)
		if err == nil {
			return id, nil
		}
		var se *statusError
		if errors.As(err, &se) && se.code == http.StatusConflict && salt < 16 {
			continue
		}
		return "", err
	}
}

// abandonUpload frees a staged upload after a failure, best-effort on a
// fresh context (the job context is usually already canceled).
func (c *Coordinator) abandonUpload(cl *client, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	cl.uploadAbort(ctx, id) //nolint:errcheck // the TTL sweep is the backstop
}

// await polls one shard job to a terminal state.
func (c *Coordinator) await(ctx context.Context, cl *client, jobID int) (jobStatus, error) {
	delay := 2 * time.Millisecond
	for {
		st, err := cl.status(ctx, jobID)
		if err != nil {
			return st, err
		}
		switch st.State {
		case stateDone:
			return st, nil
		case stateFailed:
			return st, fmt.Errorf("job %d failed: %s", jobID, st.Error)
		case stateCanceled:
			return st, fmt.Errorf("job %d canceled: %s", jobID, st.Error)
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay < 50*time.Millisecond {
			delay *= 2
		}
	}
}

// cancelAll fans a cancel out to every job the run started, on a fresh
// short-deadline context so cancellation still lands when the job context
// itself is what died.  Best-effort and concurrent: a worker that is gone
// cannot be canceled, and that is fine — its scheduler dies with it.
func (c *Coordinator) cancelAll(jobs []shardJob) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j shardJob) {
			defer wg.Done()
			c.clients[j.worker].cancel(ctx, j.jobID) //nolint:errcheck // best-effort fan-out
		}(j)
	}
	wg.Wait()
}

// mergeLane is one worker's paginated sorted output as a stream.
type mergeLane struct {
	cl      *client
	jobID   int
	total   int // -1 until the first page reveals n
	fetched int
	curKeys []int64
	curPay  [][]byte
	eoff    int // emit offset into the current chunk
}

// merge streams the sorted shards back and interleaves them with the
// loser-tree merge.  Lanes are indexed by shard (= splitter range), so the
// merge's lane-order tie-break reproduces exactly the single-machine
// stable order: equal keys never straddle shards, and within a shard the
// worker already emitted them in stable order.
func (c *Coordinator) merge(ctx context.Context, statuses []jobStatus, shards [][]int, withPayloads bool) ([]int64, [][]byte, error) {
	w := len(c.clients)
	lanes := make([]*mergeLane, w)
	total := 0
	for i := range lanes {
		lanes[i] = &mergeLane{total: -1}
		if statuses[i].ID != 0 {
			lanes[i].cl = c.clients[i]
			lanes[i].jobID = statuses[i].ID
		}
		total += len(shards[i])
	}
	outKeys := make([]int64, 0, total)
	var outPay [][]byte
	if withPayloads {
		outPay = make([][]byte, 0, total)
	}

	refill := func(lane int) ([]int64, error) {
		l := lanes[lane]
		if l.cl == nil {
			return nil, nil // empty shard: exhausted from the start
		}
		if l.total >= 0 && l.fetched >= l.total {
			return nil, nil
		}
		var (
			p   page
			err error
		)
		if withPayloads {
			p, err = l.cl.recordsPage(ctx, l.jobID, l.fetched, c.cfg.PageKeys)
		} else {
			p, err = l.cl.keysPage(ctx, l.jobID, l.fetched, c.cfg.PageKeys)
		}
		if err != nil {
			return nil, err
		}
		l.total = p.N
		l.fetched += len(p.Keys)
		if len(p.Keys) == 0 {
			return nil, nil
		}
		l.curKeys = p.Keys
		l.curPay = p.Payloads
		l.eoff = 0
		return p.Keys, nil
	}
	emit := func(lane, n int) error {
		l := lanes[lane]
		outKeys = append(outKeys, l.curKeys[l.eoff:l.eoff+n]...)
		if withPayloads {
			outPay = append(outPay, l.curPay[l.eoff:l.eoff+n]...)
		}
		l.eoff += n
		return nil
	}
	if err := memsort.StreamMerge(w, refill, emit); err != nil {
		return nil, nil, fmt.Errorf("dist: merge: %w", err)
	}
	return outKeys, outPay, nil
}

// WorkerURLs exposes the configured fleet (for CLIs printing reports).
func (c *Coordinator) WorkerURLs() []string {
	return slices.Clone(c.cfg.Workers)
}
