package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/pdm"
)

// client is the coordinator's view of one pdmd worker: a thin typed layer
// over the worker's JSON API with the hygiene every call needs — a hard
// per-request timeout, bounded retries with backoff on transient failures,
// and a response body that is read to completion and closed on every path
// so the shared connection pool never leaks.
type client struct {
	base    string
	http    *http.Client
	timeout time.Duration
	retries int
}

// Mirror types for the worker's JSON.  dist deliberately does not import
// the root repro package (the facade there wraps this package), so the
// wire shapes are restated here; jobStatus matches repro.JobStatus's tags
// and workerReport matches repro.Report's untagged Go field names.

type jobStatus struct {
	ID        int           `json:"id"`
	Label     string        `json:"label,omitempty"`
	State     string        `json:"state"`
	Algorithm string        `json:"algorithm"`
	N         int           `json:"n"`
	Error     string        `json:"error,omitempty"`
	Report    *workerReport `json:"report,omitempty"`
}

// Job states as the scheduler serializes them.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

type workerReport struct {
	N           int
	Passes      float64
	ReadPasses  float64
	WritePasses float64
	PaddedN     int
	IO          pdm.Stats
}

type health struct {
	Status    string  `json:"status"`
	JobMemory int     `json:"jobMemory"`
	BlockSize int     `json:"blockSize"`
	Disks     int     `json:"disks"`
	Alpha     float64 `json:"alpha"`
	Workers   int     `json:"workers"`
	Queued    int     `json:"queued"`
	Running   int     `json:"running"`
}

// jobSpec is the commit (and submit) body: pdmdapi.SubmitRequest minus the
// inline input, which arrives as staged pages.
type jobSpec struct {
	Alg            string `json:"alg,omitempty"`
	Kernel         string `json:"kernel,omitempty"`
	Memory         int    `json:"memory,omitempty"`
	BlockLatencyUS int64  `json:"blockLatencyUs,omitempty"`
	Backend        string `json:"backend,omitempty"`
	KeepKeys       bool   `json:"keepKeys,omitempty"`
	Label          string `json:"label,omitempty"`
}

type page struct {
	N        int      `json:"n"`
	Offset   int      `json:"offset"`
	Keys     []int64  `json:"keys"`
	Payloads [][]byte `json:"payloads"`
}

// statusError is a non-2xx worker answer: terminal for the request (the
// worker understood us and said no), as opposed to the transport errors
// and gateway-style codes do retries.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("worker answered %d: %s", e.code, e.msg)
}

// retryable reports whether another attempt could change the answer:
// transport errors (connection refused, reset, timeout) and the transient
// status codes.  A 4xx is the coordinator's own bug and never retried.
func retryable(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusInsufficientStorage, http.StatusTooManyRequests:
		return true
	}
	return false
}

// do runs one JSON request with the per-call timeout and retry policy.
// The request body is re-marshaled bytes, so every retry sends a fresh
// reader; the response body is always drained and closed.
func (c *client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("dist: marshal %s %s: %w", method, path, err)
		}
	}
	backoff := 20 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < time.Second {
				backoff *= 2
			}
		}
		code, raw, err := c.once(ctx, method, path, body)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = fmt.Errorf("dist: %s %s%s: %w", method, c.base, path, err)
			continue
		}
		if code >= 200 && code < 300 {
			if out == nil || len(raw) == 0 {
				return nil
			}
			if err := json.Unmarshal(raw, out); err != nil {
				return fmt.Errorf("dist: decode %s %s%s: %w", method, c.base, path, err)
			}
			return nil
		}
		msg := errorMessage(raw)
		lastErr = fmt.Errorf("dist: %s %s%s: %w", method, c.base, path, &statusError{code: code, msg: msg})
		if !retryable(code) {
			return lastErr
		}
	}
	return lastErr
}

// once is a single attempt: its own deadline, body drained and closed
// whatever happens.
func (c *client) once(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func errorMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	if len(raw) > 200 {
		raw = raw[:200]
	}
	return string(raw)
}

func (c *client) health(ctx context.Context) (health, error) {
	var h health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

func (c *client) uploadCreate(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/uploads", map[string]string{"id": id}, nil)
}

func (c *client) uploadPage(ctx context.Context, id string, seq int, keys []int64, payloads [][]byte) error {
	body := map[string]any{"keys": keys}
	if payloads != nil {
		body["payloads"] = payloads
	}
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/uploads/%s/pages?seq=%d", id, seq), body, nil)
}

func (c *client) uploadCommit(ctx context.Context, id string, spec jobSpec) (jobStatus, error) {
	var st jobStatus
	err := c.do(ctx, http.MethodPost, "/uploads/"+id+"/commit", spec, &st)
	return st, err
}

func (c *client) uploadAbort(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/uploads/"+id, nil, nil)
}

func (c *client) status(ctx context.Context, jobID int) (jobStatus, error) {
	var st jobStatus
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/jobs/%d", jobID), nil, &st)
	return st, err
}

func (c *client) cancel(ctx context.Context, jobID int) error {
	return c.do(ctx, http.MethodPost, fmt.Sprintf("/jobs/%d/cancel", jobID), nil, nil)
}

func (c *client) keysPage(ctx context.Context, jobID, offset, limit int) (page, error) {
	var p page
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/jobs/%d/keys?offset=%d&limit=%d", jobID, offset, limit), nil, &p)
	return p, err
}

func (c *client) recordsPage(ctx context.Context, jobID, offset, limit int) (page, error) {
	var p page
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/jobs/%d/records?offset=%d&limit=%d", jobID, offset, limit), nil, &p)
	return p, err
}
