package dist

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"
)

func testCoordinator(t *testing.T, workers int) *Coordinator {
	t.Helper()
	urls := make([]string, workers)
	for i := range urls {
		urls[i] = "http://worker" + string(rune('a'+i)) + ".invalid"
	}
	c, err := New(Config{Workers: urls})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("New accepted an empty worker list")
	}
	c := testCoordinator(t, 2)
	if got := c.WorkerURLs(); len(got) != 2 {
		t.Fatalf("WorkerURLs = %v, want 2 entries", got)
	}
	// Defaults fill in: page size, concurrency, timeout, retries, label.
	if c.cfg.PageKeys <= 0 || c.cfg.Concurrency <= 0 || c.cfg.RequestTimeout <= 0 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
	if c.cfg.Retries != 3 {
		t.Fatalf("default retries = %d, want 3", c.cfg.Retries)
	}
	// Retries < 0 means none at all.
	c2, err := New(Config{Workers: []string{"http://w.invalid"}, Retries: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c2.cfg.Retries != 0 {
		t.Fatalf("Retries=-1 resolved to %d, want 0", c2.cfg.Retries)
	}
}

// Splitters must be a pure function of the input: same keys, same worker
// count, same splitters — that determinism is half of the bit-identical
// output contract (the merge tie-break is the other half).
func TestSplittersDeterministicAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]int64, 50000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	for _, w := range []int{2, 3, 4, 8} {
		c := testCoordinator(t, w)
		sp1, s1 := c.splitters(keys, w)
		sp2, s2 := c.splitters(slices.Clone(keys), w)
		if !slices.Equal(sp1, sp2) || s1 != s2 {
			t.Fatalf("w=%d: splitters not deterministic: %v/%d vs %v/%d", w, sp1, s1, sp2, s2)
		}
		if len(sp1) != w-1 {
			t.Fatalf("w=%d: got %d splitters, want %d", w, len(sp1), w-1)
		}
		if !slices.IsSorted(sp1) {
			t.Fatalf("w=%d: splitters not sorted: %v", w, sp1)
		}
		if s1 <= 0 || s1 > len(keys) {
			t.Fatalf("w=%d: sample size %d out of range", w, s1)
		}
	}
	// One worker needs no splitters.
	c := testCoordinator(t, 1)
	if sp, s := c.splitters(keys, 1); sp != nil || s != 0 {
		t.Fatalf("w=1: got %v/%d, want nil/0", sp, s)
	}
}

// Splitter balance on a uniform input: no shard should be pathologically
// large, since that is exactly what the Θ(k·α·log n) oversampling bounds.
func TestSplittersBalanceUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 100000)
	for i := range keys {
		keys[i] = rng.Int63()
	}
	const w = 4
	c := testCoordinator(t, w)
	sp, _ := c.splitters(keys, w)
	counts := make([]int, w)
	for _, k := range keys {
		i, _ := slices.BinarySearch(sp, k+1) // key == splitter goes right
		counts[i]++
	}
	want := len(keys) / w
	for i, got := range counts {
		if got < want/2 || got > want*2 {
			t.Fatalf("shard %d has %d keys, want within [%d, %d] of %d: %v",
				i, got, want/2, want*2, want, counts)
		}
	}
}

func TestRetryableCodes(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusInsufficientStorage} {
		if !retryable(code) {
			t.Errorf("retryable(%d) = false, want true", code)
		}
	}
	for _, code := range []int{http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
		http.StatusConflict, http.StatusInternalServerError} {
		if retryable(code) {
			t.Errorf("retryable(%d) = true, want false", code)
		}
	}
}

// The client retries transient statuses and surfaces the eventual answer;
// non-retryable statuses fail immediately with a statusError.
func TestClientRetriesTransient(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits < 3 {
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`)) //nolint:errcheck
	}))
	defer ts.Close()
	cl := &client{base: ts.URL, http: ts.Client(), timeout: 5 * time.Second, retries: 5}
	h, err := cl.health(t.Context())
	if err != nil {
		t.Fatalf("health after transient 503s: %v", err)
	}
	if h.Status != "ok" || hits != 3 {
		t.Fatalf("status %q after %d hits, want ok after 3", h.Status, hits)
	}

	hits = 0
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Error(w, `{"error":"no such job"}`, http.StatusNotFound)
	}))
	defer ts2.Close()
	cl2 := &client{base: ts2.URL, http: ts2.Client(), timeout: 5 * time.Second, retries: 5}
	if _, err := cl2.status(t.Context(), 1); err == nil {
		t.Fatalf("status on 404 succeeded")
	}
	if hits != 1 {
		t.Fatalf("404 was retried %d times, want 1 attempt", hits)
	}
}
