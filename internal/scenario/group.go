package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// Agg is one group's aggregate: Count pairs carried the group's Key, and
// Sum/Min/Max summarize their payload words (the key itself when the
// input has no payload column).
type Agg struct {
	Key   int64 `json:"key"`
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// PartitionIndex is the hash route shared by the partitioning kernel and
// its planners/callers: pre-counting partition sizes with this function
// yields exactly the layout GroupPartition scatters.  Fibonacci hashing
// spreads adjacent keys across partitions without any data-dependent
// state, so the route is deterministic.
func PartitionIndex(key int64, parts int) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int((h >> 17) % uint64(parts))
}

// table accumulates aggregates for at most cap distinct keys.
type table struct {
	idx  map[int64]int
	aggs []Agg
	cap  int
}

func newTable(cap int) *table {
	return &table{idx: make(map[int64]int), cap: cap}
}

func (t *table) add(key, payload int64) error {
	i, ok := t.idx[key]
	if !ok {
		if len(t.aggs) >= t.cap {
			return ErrOverflow
		}
		i = len(t.aggs)
		t.idx[key] = i
		t.aggs = append(t.aggs, Agg{Key: key, Min: payload, Max: payload})
	}
	a := &t.aggs[i]
	a.Count++
	a.Sum += payload
	if payload < a.Min {
		a.Min = payload
	}
	if payload > a.Max {
		a.Max = payload
	}
	return nil
}

// sorted returns the aggregates ordered by key.  The map is never
// iterated for output, so the result is deterministic.
func (t *table) sorted() []Agg {
	sort.Slice(t.aggs, func(i, j int) bool { return t.aggs[i].Key < t.aggs[j].Key })
	return t.aggs
}

// pairGeometry validates the pair layout shared by both group-by routes.
func pairGeometry(a *pdm.Array, in *pdm.Stripe, pairWords int) error {
	stripe := a.StripeWidth()
	if pairWords != 1 && pairWords != 2 {
		return fmt.Errorf("scenario: group-by pairs of %d words (want 1 or 2)", pairWords)
	}
	if a.B()%pairWords != 0 {
		return fmt.Errorf("scenario: pair of %d words straddles blocks of B = %d", pairWords, a.B())
	}
	if in.Len() <= 0 || in.Len()%stripe != 0 {
		return fmt.Errorf("scenario: group-by input %d is not stripe-padded (stripe %d)", in.Len(), stripe)
	}
	return nil
}

// GroupOnePass aggregates the padded input in one charged read pass,
// hashing every pair into an in-memory table: the route the planner picks
// when the distinct groups fit in memory.  The input holds (key, payload)
// pairs of pairWords words (pairWords = 1 means the key is its own
// payload); pairs whose key is the MaxInt64 padding sentinel are skipped.
// More than maxGroups distinct keys abort with ErrOverflow — the caller
// falls back to the partitioned route or a full sort.  Aggregates return
// sorted by key.
func GroupOnePass(a *pdm.Array, in *pdm.Stripe, pairWords, maxGroups int) ([]Agg, error) {
	if err := pairGeometry(a, in, pairWords); err != nil {
		return nil, err
	}
	stripe := a.StripeWidth()
	a.Arena().SetPhase("scenario/group")
	defer a.Arena().SetPhase("")
	buf, err := a.Arena().Alloc(stripe)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	rd, err := stream.NewStripeReader(in, 0, in.Len(), stripe)
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	t := newTable(maxGroups)
	for off := 0; off < in.Len(); off += stripe {
		if err := rd.FillFlat(buf); err != nil {
			return nil, err
		}
		if err := tallyPairs(t, buf, pairWords); err != nil {
			return nil, err
		}
	}
	return t.sorted(), nil
}

// tallyPairs feeds one chunk of pairs into the table, skipping padding.
func tallyPairs(t *table, flat []int64, pairWords int) error {
	for i := 0; i < len(flat); i += pairWords {
		key := flat[i]
		if key == math.MaxInt64 {
			continue
		}
		payload := key
		if pairWords == 2 {
			payload = flat[i+1]
		}
		if err := t.add(key, payload); err != nil {
			return err
		}
	}
	return nil
}

// GroupPartition aggregates inputs with more distinct groups than memory
// holds: a scatter pass hashes every pair to one of len(sizes) partition
// stripes, then each partition — now small enough to table in memory — is
// read back and aggregated.  sizes[p] must be the exact pair count the
// PartitionIndex route sends to partition p (callers count it on the
// client side before loading), so each partition stripe is allocated
// tightly: its capacity is the pair count rounded up to whole blocks,
// with MaxInt64-key padding in the final block.
//
// The scatter stages one block per partition, so a partition's writes are
// single-block steps — the irregular-scatter price the planner's
// partition route charges for.  A partition whose distinct keys still
// exceed maxGroups aborts with ErrOverflow.  Aggregates return sorted by
// key (partitions hold disjoint key sets, so a global sort of the
// concatenation is exact).
func GroupPartition(a *pdm.Array, in *pdm.Stripe, pairWords int, sizes []int, maxGroups int) ([]Agg, error) {
	if err := pairGeometry(a, in, pairWords); err != nil {
		return nil, err
	}
	parts := len(sizes)
	if parts < 2 {
		return nil, fmt.Errorf("scenario: partitioned group-by needs ≥ 2 partitions, got %d", parts)
	}
	stripe, b := a.StripeWidth(), a.B()
	a.Arena().SetPhase("scenario/group")
	defer a.Arena().SetPhase("")

	// Tight per-partition stripes, one staging block each.
	pstripes := make([]*pdm.Stripe, parts)
	free := func() {
		for _, ps := range pstripes {
			if ps != nil {
				ps.Free()
			}
		}
	}
	defer free()
	for p, sz := range sizes {
		if sz < 0 {
			return nil, fmt.Errorf("scenario: partition %d has negative size %d", p, sz)
		}
		words := sz * pairWords
		padded := (words + b - 1) / b * b
		if padded == 0 {
			padded = b
		}
		ps, err := a.NewStripe(padded)
		if err != nil {
			return nil, err
		}
		pstripes[p] = ps
	}
	staging, err := a.Arena().Alloc(parts * b)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(staging)
	buf, err := a.Arena().Alloc(stripe)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)

	w, err := stream.NewWriter(a)
	if err != nil {
		return nil, err
	}
	closeWriter := true
	defer func() {
		if closeWriter {
			w.Close() //nolint:errcheck // error paths already carry an error
		}
	}()

	fill := make([]int, parts)  // staged words per partition
	wrote := make([]int, parts) // words flushed to the partition stripe
	flushBlock := func(p int) error {
		ps := pstripes[p]
		if wrote[p]+b > ps.Len() {
			return fmt.Errorf("scenario: partition %d overflows its declared size", p)
		}
		addrs, err := ps.AddrRange(wrote[p], b)
		if err != nil {
			return err
		}
		if err := w.WriteFlat(addrs, staging[p*b:(p+1)*b]); err != nil {
			return err
		}
		wrote[p] += b
		fill[p] = 0
		return nil
	}
	scatter := func(key, payload int64) error {
		p := PartitionIndex(key, parts)
		base := p * b
		staging[base+fill[p]] = key
		fill[p]++
		if pairWords == 2 {
			staging[base+fill[p]] = payload
			fill[p]++
		}
		if fill[p] == b {
			return flushBlock(p)
		}
		return nil
	}

	rd, err := stream.NewStripeReader(in, 0, in.Len(), stripe)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	for off := 0; off < in.Len(); off += stripe {
		if err := rd.FillFlat(buf); err != nil {
			return nil, err
		}
		for i := 0; i < len(buf); i += pairWords {
			key := buf[i]
			if key == math.MaxInt64 {
				continue
			}
			payload := key
			if pairWords == 2 {
				payload = buf[i+1]
			}
			if err := scatter(key, payload); err != nil {
				return nil, err
			}
		}
	}
	// Pad and flush the partial tail blocks, then drain the write-behind
	// before the read-back.
	for p := 0; p < parts; p++ {
		if fill[p] == 0 {
			continue
		}
		for i := fill[p]; i < b; i += pairWords {
			staging[p*b+i] = math.MaxInt64
			if pairWords == 2 {
				staging[p*b+i+1] = 0
			}
		}
		if err := flushBlock(p); err != nil {
			return nil, err
		}
	}
	closeWriter = false
	if err := w.Close(); err != nil {
		return nil, err
	}

	// Read each partition back and aggregate it in isolation.
	var out []Agg
	for p, ps := range pstripes {
		if wrote[p] == 0 {
			continue
		}
		prd, err := stream.NewStripeReader(ps, 0, wrote[p], stripe)
		if err != nil {
			return nil, err
		}
		t := newTable(maxGroups)
		for off := 0; off < wrote[p]; off += stripe {
			c := stripe
			if c > wrote[p]-off {
				c = wrote[p] - off
			}
			if err := prd.FillFlat(buf[:c]); err != nil {
				prd.Close()
				return nil, err
			}
			if err := tallyPairs(t, buf[:c], pairWords); err != nil {
				prd.Close()
				return nil, err
			}
		}
		prd.Close()
		out = append(out, t.aggs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
