// Package scenario implements the query kernels that answer common
// questions without a full sort, in the same charged-pass accounting as
// internal/core: top-K/quantile selection (one filtering pass at sampled
// thresholds), external group-by aggregation (one hashed pass when the
// groups fit in memory, a hash-partition round trip otherwise), and
// sorted-merge ingest (a two-lane StreamMerge pass folding a sorted batch
// into a sorted dataset).
//
// Every kernel streams its charged I/O through internal/stream, so the
// oblivious-accounting guarantee carries over: outputs, pass counts,
// pdm.Stats, and I/O traces are bit-identical across worker counts, disk
// backends, and compute kernels — only the wall clock changes.  The
// matching closed-form step predictions live in internal/plan
// (TopKPlan/QuantilePlan/GroupByPlan/IngestPlan); the deterministic
// sample/budget formulas are shared so a plan's steps are the steps a run
// charges.
package scenario
