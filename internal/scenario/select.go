package scenario

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/pdm"
	"repro/internal/stream"
)

// ErrOverflow reports that a filter pass found more survivors than its
// memory budget: the sampled threshold window was too generous (duplicate
// pileups, adversarial inputs).  Callers fall back to the full sort, like
// core's probabilistic algorithms fall back on cleanup overflow.
var ErrOverflow = errors.New("scenario: filter survivors exceeded the memory budget")

// FilterResult is one filtering pass's outcome.
type FilterResult struct {
	// Kept are the surviving keys in input order (not yet sorted).
	Kept []int64
	// Below counts keys strictly below the window's low edge.
	Below int
}

// Filter streams the padded input stripe once (a single charged read
// pass) and keeps the keys inside the threshold window: v ≤ hi, and
// v ≥ lo when hasLo is set, counting the keys below lo.  Padding
// sentinels (MaxInt64) never survive — callers must reject hi = MaxInt64
// before planning the pass.  At most cap survivors are held (one arena
// allocation); one more aborts with ErrOverflow.
//
// The scan is sequential and single-buffered, so the result, the charged
// steps, and the I/O trace are identical for any worker count, backend,
// or kernel.
func Filter(a *pdm.Array, in *pdm.Stripe, lo, hi int64, hasLo bool, cap int) (*FilterResult, error) {
	padded := in.Len()
	stripe := a.StripeWidth()
	if padded <= 0 || padded%stripe != 0 {
		return nil, fmt.Errorf("scenario: filter input %d is not stripe-padded (stripe %d)", padded, stripe)
	}
	if hi == math.MaxInt64 {
		return nil, fmt.Errorf("scenario: filter threshold %d would keep the padding sentinels", hi)
	}
	if cap < 0 {
		cap = 0
	}
	a.Arena().SetPhase("scenario/filter")
	defer a.Arena().SetPhase("")
	buf, err := a.Arena().Alloc(stripe)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(buf)
	kept, err := a.Arena().Alloc(cap)
	if err != nil {
		return nil, err
	}
	defer a.Arena().Free(kept)

	rd, err := stream.NewStripeReader(in, 0, padded, stripe)
	if err != nil {
		return nil, err
	}
	defer rd.Close()

	res := &FilterResult{}
	nk := 0
	for off := 0; off < padded; off += stripe {
		if err := rd.FillFlat(buf); err != nil {
			return nil, err
		}
		for _, v := range buf {
			if hasLo && v < lo {
				res.Below++
				continue
			}
			if v > hi {
				continue
			}
			if nk == cap {
				return nil, ErrOverflow
			}
			kept[nk] = v
			nk++
		}
	}
	res.Kept = append([]int64(nil), kept[:nk]...)
	return res, nil
}
