package scenario

import (
	"fmt"
	"math"

	"repro/internal/memsort"
	"repro/internal/pdm"
	"repro/internal/stream"
)

// Merge folds two sorted stripes into one sorted output stripe with a
// single two-lane StreamMerge pass: each input is read once and the
// output written once, all through charged streamed I/O.  Both inputs
// must be stripe-padded (their MaxInt64 sentinels sort to the tail of the
// output, so the merged stripe of len(x)+len(y) keys carries the combined
// padding at the end).  Ties break toward x (the existing dataset), which
// matches what re-sorting the concatenation produces for equal keys.
//
// Memory: three chunk buffers (two lanes + output staging), each a whole
// number of stripes, sized to fit one memory load together.
func Merge(a *pdm.Array, x, y *pdm.Stripe) (*pdm.Stripe, error) {
	stripe := a.StripeWidth()
	nx, ny := x.Len(), y.Len()
	if nx%stripe != 0 || ny%stripe != 0 {
		return nil, fmt.Errorf("scenario: merge inputs %d/%d are not stripe-padded (stripe %d)", nx, ny, stripe)
	}
	chunk := a.Mem() / 4 / stripe * stripe
	if chunk < stripe {
		chunk = stripe
	}
	if 3*chunk > a.Mem() {
		return nil, fmt.Errorf("scenario: merge needs 3 stripe buffers, D*B = %d too large for M = %d", stripe, a.Mem())
	}
	a.Arena().SetPhase("scenario/merge")
	defer a.Arena().SetPhase("")

	total := nx + ny
	out, err := a.NewStripe(total)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*pdm.Stripe, error) {
		out.Free()
		return nil, err
	}

	type lane struct {
		rd   *stream.Reader
		buf  []int64
		rem  int // keys not yet handed to the merge
		eoff int // consumed prefix of the current chunk
		cur  []int64
	}
	lanes := make([]*lane, 2)
	for i, s := range []*pdm.Stripe{x, y} {
		buf, err := a.Arena().Alloc(chunk)
		if err != nil {
			return fail(err)
		}
		defer a.Arena().Free(buf)
		l := &lane{buf: buf, rem: s.Len()}
		if s.Len() > 0 {
			rd, err := stream.NewStripeReader(s, 0, s.Len(), chunk)
			if err != nil {
				return fail(err)
			}
			defer rd.Close()
			l.rd = rd
		}
		lanes[i] = l
	}
	staging, err := a.Arena().Alloc(chunk)
	if err != nil {
		return fail(err)
	}
	defer a.Arena().Free(staging)

	w, err := stream.NewWriter(a)
	if err != nil {
		return fail(err)
	}
	wrote := 0 // keys flushed to out
	nst := 0   // keys staged
	flush := func() error {
		if nst == 0 {
			return nil
		}
		addrs, err := out.AddrRange(wrote, nst)
		if err != nil {
			return err
		}
		if err := w.WriteFlat(addrs, staging[:nst]); err != nil {
			return err
		}
		wrote += nst
		nst = 0
		return nil
	}

	refill := func(i int) ([]int64, error) {
		l := lanes[i]
		if l.rem == 0 {
			return nil, nil
		}
		c := chunk
		if c > l.rem {
			c = l.rem
		}
		if err := l.rd.FillFlat(l.buf[:c]); err != nil {
			return nil, err
		}
		l.rem -= c
		// The padding sentinel doubles as StreamMerge's exhaustion marker,
		// so it must never enter the merge: trim the sentinel suffix (the
		// inputs are sorted, so padding is always a chunk tail).  All-pad
		// chunks return empty, and the merge refills again — the read was
		// still charged, like any streamed pass over the padded stripe.
		cut := c
		for cut > 0 && l.buf[cut-1] == math.MaxInt64 {
			cut--
		}
		l.cur = l.buf[:cut]
		l.eoff = 0
		return l.cur, nil
	}
	emit := func(i, n int) error {
		l := lanes[i]
		src := l.cur[l.eoff : l.eoff+n]
		l.eoff += n
		for len(src) > 0 {
			c := copy(staging[nst:], src)
			nst += c
			src = src[c:]
			if nst == len(staging) {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := memsort.StreamMerge(2, refill, emit); err != nil {
		w.Close() //nolint:errcheck // the merge error takes precedence
		return fail(err)
	}
	// Re-pad the output to the full stripe: the combined sentinel tail the
	// trim withheld from the merge.
	for wrote+nst < total {
		room := len(staging) - nst
		if pad := total - wrote - nst; room > pad {
			room = pad
		}
		for i := 0; i < room; i++ {
			staging[nst+i] = math.MaxInt64
		}
		nst += room
		if nst == len(staging) {
			if err := flush(); err != nil {
				w.Close() //nolint:errcheck // the flush error takes precedence
				return fail(err)
			}
		}
	}
	if err := flush(); err != nil {
		w.Close() //nolint:errcheck // the flush error takes precedence
		return fail(err)
	}
	if err := w.Close(); err != nil {
		return fail(err)
	}
	if wrote != total {
		return fail(fmt.Errorf("scenario: merge wrote %d of %d keys", wrote, total))
	}
	return out, nil
}
