package repro

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/pdm"
	"repro/internal/plan"
	"repro/internal/scenario"
)

// This file is the facade for the query scenarios: answering top-K,
// quantile, group-by, and sorted-merge-ingest questions on the machine
// without (necessarily) running a full sort.  Each entry point prices the
// scenario route against the full sort with the planner's closed-form
// step predictions (ExplainScenario exposes the table) and runs whichever
// Auto deems cheaper.  Like Sort, the charged passes are oblivious: only
// the disk-resident streaming passes touch the I/O accounting, while
// client-side metadata work (sampling, partition-size counting, input
// validation) is uncharged, exactly like Load/Unload.

// ScenarioSpec describes a prospective scenario run for planning.
type ScenarioSpec struct {
	// Kind selects the scenario: "topk", "quantile", "groupby", "ingest".
	Kind string `json:"kind"`
	// N is the dataset size in keys (records for groupby).
	N int `json:"n"`
	// K is the top-K count (topk only).
	K int `json:"k,omitempty"`
	// Rank is the 1-indexed target rank (quantile only).
	Rank int `json:"rank,omitempty"`
	// Groups hints the distinct group count (groupby only); ≤ 0 means
	// unknown, which plans for the worst case of N distinct groups.
	Groups int `json:"groups,omitempty"`
	// PairWords is the group-by record width: 1 for bare keys, 2 for
	// key+payload pairs.  Zero means 1.
	PairWords int `json:"pairWords,omitempty"`
	// Batch is the new-batch size (ingest only).
	Batch int `json:"batch,omitempty"`
}

// ScenarioPlanReport is the planner's answer for one scenario: the
// predicted steps and passes of the scenario route, the full-sort
// alternative it competes with, and the Auto decision between them.  When
// Exact is true a non-fallback run charges exactly ReadSteps/WriteSteps.
type ScenarioPlanReport struct {
	Kind     string `json:"kind"`
	Feasible bool   `json:"feasible"`
	Reason   string `json:"reason,omitempty"`

	PaddedN     int     `json:"paddedN,omitempty"`
	ReadSteps   int64   `json:"readSteps,omitempty"`
	WriteSteps  int64   `json:"writeSteps,omitempty"`
	ReadPasses  float64 `json:"readPasses,omitempty"`
	WritePasses float64 `json:"writePasses,omitempty"`
	Exact       bool    `json:"exact,omitempty"`

	Sample int    `json:"sample,omitempty"`
	Budget int    `json:"budget,omitempty"`
	Route  string `json:"route"`

	FullSortAlgorithm  string  `json:"fullSortAlgorithm,omitempty"`
	FullSortReadPasses float64 `json:"fullSortReadPasses,omitempty"`
	UseScenario        bool    `json:"useScenario"`
}

// GroupAgg is one group's aggregate from Machine.GroupBy: Count records
// carried Key, and Sum/Min/Max summarize their payloads (the key itself
// when the input has no payload column).
type GroupAgg struct {
	Key   int64 `json:"key"`
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
}

// scenarioShape is the planner shape scenario pricing uses: the pure
// geometry, like Plan (deterministic — no calibration probes).
func (m *Machine) scenarioShape() plan.Shape {
	return planShape(m.a.Mem(), m.a.D(), m.alpha)
}

// ExplainScenario prices spec's scenario route against the full sort.
func (m *Machine) ExplainScenario(spec ScenarioSpec) (*ScenarioPlanReport, error) {
	p, err := scenarioPlanFor(m.scenarioShape(), spec)
	if err != nil {
		return nil, err
	}
	return convertScenarioPlan(p), nil
}

// scenarioPlanFor is ExplainScenario as a pure function of the geometry,
// shared with the scheduler's submit-time planning.
func scenarioPlanFor(shape plan.Shape, spec ScenarioSpec) (plan.ScenarioPlan, error) {
	if spec.N <= 0 {
		return plan.ScenarioPlan{}, fmt.Errorf("repro: ScenarioSpec.N = %d, want > 0", spec.N)
	}
	w := plan.Workload{N: spec.N}
	switch spec.Kind {
	case "topk":
		return plan.TopKPlan(shape, w, spec.K), nil
	case "quantile":
		return plan.QuantilePlan(shape, w, spec.Rank), nil
	case "groupby":
		pw := spec.PairWords
		if pw == 0 {
			pw = 1
		}
		return plan.GroupByPlan(shape, spec.N, spec.Groups, pw), nil
	case "ingest":
		return plan.IngestPlan(shape, w, spec.Batch), nil
	}
	return plan.ScenarioPlan{}, fmt.Errorf("repro: unknown scenario kind %q (want topk|quantile|groupby|ingest)", spec.Kind)
}

// convertScenarioPlan maps the internal plan onto the facade type.
func convertScenarioPlan(p plan.ScenarioPlan) *ScenarioPlanReport {
	return &ScenarioPlanReport{
		Kind: p.Kind, Feasible: p.Feasible, Reason: p.Reason,
		PaddedN: p.PaddedN, ReadSteps: p.ReadSteps, WriteSteps: p.WriteSteps,
		ReadPasses: p.ReadPasses, WritePasses: p.WritePasses, Exact: p.Exact,
		Sample: p.Sample, Budget: p.Budget, Route: p.Route,
		FullSortAlgorithm: string(p.FullSortAlg), FullSortReadPasses: p.FullSortReadPasses,
		UseScenario: p.UseScenario,
	}
}

// checkKeys rejects the padding sentinel, like Sort.
func checkKeys(keys []int64) error {
	for _, k := range keys {
		if k == math.MaxInt64 {
			return ErrKeyRange
		}
	}
	return nil
}

// splitmix64 is the fixed-seed PRNG behind the deterministic client-side
// sample (the same generator the workload harness uses).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// sampleKeys draws the planner's SelectSample(n) keys with a fixed
// splitmix64 stream and returns them sorted.  The draw depends only on n,
// so a scenario run is reproducible for a given input.
func sampleKeys(keys []int64) []int64 {
	n := len(keys)
	s := plan.SelectSample(n)
	out := make([]int64, s)
	if s >= n {
		copy(out, keys)
	} else {
		x := uint64(n)
		for i := range out {
			x = splitmix64(x)
			out[i] = keys[x%uint64(n)]
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// thresholdAt returns the sampled key whose estimated rank in the
// n-key input is target (1-indexed).
func thresholdAt(sample []int64, n, target int) int64 {
	s := len(sample)
	if s >= n {
		if target < 1 {
			target = 1
		}
		if target > s {
			target = s
		}
		return sample[target-1]
	}
	idx := int(int64(target) * int64(s) / int64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= s {
		idx = s - 1
	}
	return sample[idx]
}

// scenarioReport assembles a Report from the I/O delta of a scenario run,
// with passes over the scenario plan's padded length.
func (m *Machine) scenarioReport(kind, route string, n, paddedN int, io pdm.Stats) *Report {
	stripe := m.a.StripeWidth()
	rep := &Report{
		Algorithm:     Auto,
		N:             n,
		Passes:        io.Passes(paddedN, stripe),
		ReadPasses:    io.ReadPasses(paddedN, stripe),
		WritePasses:   io.WritePasses(paddedN, stripe),
		IO:            io,
		PaddedN:       paddedN,
		Scenario:      kind,
		ScenarioRoute: route,
	}
	rep.pipelineMetrics(io, m.a.Workers())
	return rep
}

// loadPadded loads data onto a fresh stripe padded to pad keys with
// MaxInt64 sentinels (uncharged, like Sort's input staging).
func (m *Machine) loadPadded(data []int64, pad int) (*pdm.Stripe, error) {
	buf := make([]int64, pad)
	copy(buf, data)
	for i := len(data); i < pad; i++ {
		buf[i] = math.MaxInt64
	}
	s, err := m.a.NewStripe(pad)
	if err != nil {
		return nil, err
	}
	if err := s.Load(buf); err != nil {
		s.Free()
		return nil, err
	}
	return s, nil
}

// TopK returns the k smallest keys in ascending order.  When the planner
// prices the filter route cheaper than the full sort (ExplainScenario
// shows the comparison), one charged filtering pass at a sampled
// threshold collects the survivors, they are sorted in memory, and the k
// results are written out — otherwise, or when the sampled threshold
// misses (Report.FellBack), the keys are sorted outright.  The input
// slice is never modified.
func (m *Machine) TopK(keys []int64, k int) ([]int64, *Report, error) {
	n := len(keys)
	if err := checkKeys(keys); err != nil {
		return nil, nil, err
	}
	if k < 1 || k > n {
		return nil, nil, fmt.Errorf("repro: TopK k = %d outside [1, %d]", k, n)
	}
	p := plan.TopKPlan(m.scenarioShape(), plan.Workload{N: n}, k)
	if !p.Feasible || !p.UseScenario {
		return m.topKBySort(keys, k, false)
	}
	threshold := thresholdAt(sampleKeys(keys), n, k+plan.SelectDelta(n, k))

	st0 := m.a.Stats()
	in, err := m.loadPadded(keys, p.PaddedN)
	if err != nil {
		return nil, nil, err
	}
	fr, err := scenario.Filter(m.a, in, 0, threshold, false, p.Budget)
	in.Free()
	if errors.Is(err, scenario.ErrOverflow) {
		return m.topKBySort(keys, k, true)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(fr.Kept) < k {
		// The sampled threshold cut too deep: detected, fall back.
		return m.topKBySort(keys, k, true)
	}
	m.a.Pool().SortKeys(fr.Kept)
	top := append([]int64(nil), fr.Kept[:k]...)
	if err := m.writeResult(top); err != nil {
		return nil, nil, err
	}
	rep := m.scenarioReport("topk", "filter", n, p.PaddedN, m.a.Stats().Sub(st0))
	return top, rep, nil
}

// writeResult streams a scenario's result keys to a fresh output stripe
// (padded to whole blocks), the charged write the plans price, and frees
// it — the facade returns the data, the write pays for materializing it.
func (m *Machine) writeResult(out []int64) error {
	b := m.a.B()
	pad := (len(out) + b - 1) / b * b
	if pad == 0 {
		return nil
	}
	flat, err := m.a.Arena().Alloc(pad)
	if err != nil {
		return err
	}
	defer m.a.Arena().Free(flat)
	copy(flat, out)
	for i := len(out); i < pad; i++ {
		flat[i] = math.MaxInt64
	}
	s, err := m.a.NewStripe(pad)
	if err != nil {
		return err
	}
	defer s.Free()
	return s.WriteAt(0, flat)
}

// topKBySort is TopK's full-sort route.
func (m *Machine) topKBySort(keys []int64, k int, fellBack bool) ([]int64, *Report, error) {
	cp := append([]int64(nil), keys...)
	rep, err := m.Sort(cp, Auto)
	if err != nil {
		return nil, nil, err
	}
	rep.Scenario, rep.ScenarioRoute = "topk", "fullsort"
	rep.FellBack = rep.FellBack || fellBack
	return cp[:k:k], rep, nil
}

// Quantile returns the key of 1-indexed rank r (r = 1 is the minimum,
// r = n the maximum).  The filter route keeps one charged pass's worth of
// keys around the sampled rank window and reads the answer out of the
// sorted window; a window miss (Report.FellBack) or an unfavorable plan
// sorts outright.  The input slice is never modified.
func (m *Machine) Quantile(keys []int64, r int) (int64, *Report, error) {
	n := len(keys)
	if err := checkKeys(keys); err != nil {
		return 0, nil, err
	}
	if r < 1 || r > n {
		return 0, nil, fmt.Errorf("repro: Quantile rank = %d outside [1, %d]", r, n)
	}
	p := plan.QuantilePlan(m.scenarioShape(), plan.Workload{N: n}, r)
	if !p.Feasible || !p.UseScenario {
		return m.quantileBySort(keys, r, false)
	}
	sample := sampleKeys(keys)
	delta := plan.SelectDelta(n, r)
	hasLo := r-delta > 1
	var lo int64
	if hasLo {
		lo = thresholdAt(sample, n, r-delta)
	}
	hi := thresholdAt(sample, n, r+delta)

	st0 := m.a.Stats()
	in, err := m.loadPadded(keys, p.PaddedN)
	if err != nil {
		return 0, nil, err
	}
	fr, err := scenario.Filter(m.a, in, lo, hi, hasLo, p.Budget)
	in.Free()
	if errors.Is(err, scenario.ErrOverflow) {
		return m.quantileBySort(keys, r, true)
	}
	if err != nil {
		return 0, nil, err
	}
	idx := r - 1 - fr.Below
	if idx < 0 || idx >= len(fr.Kept) {
		// The window missed the target rank: detected, fall back.
		return m.quantileBySort(keys, r, true)
	}
	m.a.Pool().SortKeys(fr.Kept)
	rep := m.scenarioReport("quantile", "filter", n, p.PaddedN, m.a.Stats().Sub(st0))
	return fr.Kept[idx], rep, nil
}

// quantileBySort is Quantile's full-sort route.
func (m *Machine) quantileBySort(keys []int64, r int, fellBack bool) (int64, *Report, error) {
	cp := append([]int64(nil), keys...)
	rep, err := m.Sort(cp, Auto)
	if err != nil {
		return 0, nil, err
	}
	rep.Scenario, rep.ScenarioRoute = "quantile", "fullsort"
	rep.FellBack = rep.FellBack || fellBack
	return cp[r-1], rep, nil
}

// GroupBy aggregates records by key: count, sum, min, and max of the
// payloads (of the keys themselves when payloads is nil), returned sorted
// by key.  payloads, when non-nil, must pair with keys element-wise.
// groups hints the distinct key count for route planning (≤ 0 = unknown):
// when the groups fit one memory load of accumulators the input is
// aggregated in a single charged pass, otherwise it takes a hash-partition
// round trip.  A hint too low is detected and re-routed (Report.FellBack).
// The input slices are never modified.
func (m *Machine) GroupBy(keys, payloads []int64, groups int) ([]GroupAgg, *Report, error) {
	n := len(keys)
	if err := checkKeys(keys); err != nil {
		return nil, nil, err
	}
	pairWords := 1
	if payloads != nil {
		if len(payloads) != n {
			return nil, nil, fmt.Errorf("repro: GroupBy got %d payloads for %d keys", len(payloads), n)
		}
		pairWords = 2
	}
	shape := m.scenarioShape()
	p := plan.GroupByPlan(shape, n, groups, pairWords)
	if !p.Feasible {
		return nil, nil, fmt.Errorf("repro: group-by infeasible: %s", p.Reason)
	}
	route := p.Route
	if route == "fullsort" {
		return m.groupBySort(keys, payloads, pairWords, false)
	}
	pairs := make([]int64, 0, n*pairWords)
	for i, k := range keys {
		pairs = append(pairs, k)
		if pairWords == 2 {
			pairs = append(pairs, payloads[i])
		}
	}
	cap := plan.GroupCap(m.a.Mem())

	st0 := m.a.Stats()
	in, err := m.loadPadded(pairs, p.PaddedN)
	if err != nil {
		return nil, nil, err
	}
	defer in.Free()

	fellBack := false
	var aggs []scenario.Agg
	if route == "onepass" {
		aggs, err = scenario.GroupOnePass(m.a, in, pairWords, cap)
		if errors.Is(err, scenario.ErrOverflow) {
			// The hint undercounted the groups: escalate to the partition
			// strategy at the worst-case fanout.
			route, fellBack, err = "partition", true, nil
		} else if err != nil {
			return nil, nil, err
		}
	}
	if route == "partition" {
		parts := plan.PartitionFanout(n, shape)
		sizes := make([]int, parts)
		for _, k := range keys {
			sizes[scenario.PartitionIndex(k, parts)]++
		}
		aggs, err = scenario.GroupPartition(m.a, in, pairWords, sizes, cap)
		if errors.Is(err, scenario.ErrOverflow) {
			// A partition still held too many distinct keys: the last
			// resort is the sort-then-scan route.
			return m.groupBySort(keys, payloads, pairWords, true)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("repro: partitioned group-by: %w", err)
		}
	}
	out := make([]GroupAgg, len(aggs))
	for i, a := range aggs {
		out[i] = GroupAgg(a)
	}
	rep := m.scenarioReport("groupby", route, n, p.PaddedN, m.a.Stats().Sub(st0))
	rep.FellBack = fellBack
	rep.PayloadWords = (pairWords - 1) * n
	return out, rep, nil
}

// groupBySort is GroupBy's sort-then-scan route: a record sort carries
// the payload column with the keys, and the aggregation scans the sorted
// output run by run (no group-count limit — equal keys are adjacent, so
// one accumulator suffices).
func (m *Machine) groupBySort(keys, payloads []int64, pairWords int, fellBack bool) ([]GroupAgg, *Report, error) {
	kc := append([]int64(nil), keys...)
	var rep *Report
	var err error
	pc := kc
	if pairWords == 2 {
		raw := make([]byte, 8*len(payloads))
		blobs := make([][]byte, len(payloads))
		for i, p := range payloads {
			b := raw[8*i : 8*i+8]
			binary.LittleEndian.PutUint64(b, uint64(p))
			blobs[i] = b
		}
		rep, err = m.SortRecords(kc, blobs, Auto)
		if err != nil {
			return nil, nil, err
		}
		pc = make([]int64, len(payloads))
		for i := range pc {
			pc[i] = int64(binary.LittleEndian.Uint64(blobs[i]))
		}
	} else {
		rep, err = m.Sort(kc, Auto)
		if err != nil {
			return nil, nil, err
		}
	}
	var out []GroupAgg
	for i := 0; i < len(kc); i++ {
		v := pc[i]
		if len(out) == 0 || out[len(out)-1].Key != kc[i] {
			out = append(out, GroupAgg{Key: kc[i], Min: v, Max: v})
		}
		a := &out[len(out)-1]
		a.Count++
		a.Sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	rep.Scenario, rep.ScenarioRoute = "groupby", "fullsort"
	rep.FellBack = rep.FellBack || fellBack
	return out, rep, nil
}

// Ingest folds a batch of new keys into an already-sorted dataset,
// returning the combined sorted keys.  The merge route sorts only the
// batch (with the planner-chosen algorithm) and folds it in with a single
// two-lane StreamMerge pass — the LSM-style alternative to re-sorting
// everything, which Auto falls back to when the plan prices it cheaper.
// dataset must be ascending; neither input slice is modified.
func (m *Machine) Ingest(dataset, batch []int64) ([]int64, *Report, error) {
	if err := checkKeys(dataset); err != nil {
		return nil, nil, err
	}
	if err := checkKeys(batch); err != nil {
		return nil, nil, err
	}
	if !sort.SliceIsSorted(dataset, func(i, j int) bool { return dataset[i] < dataset[j] }) {
		return nil, nil, fmt.Errorf("repro: Ingest dataset is not sorted")
	}
	if len(batch) == 0 {
		out := append([]int64(nil), dataset...)
		rep := m.scenarioReport("ingest", "merge", len(dataset), 0, pdm.Stats{})
		return out, rep, nil
	}
	n := len(dataset)
	p := plan.IngestPlan(m.scenarioShape(), plan.Workload{N: n}, len(batch))
	if !p.Feasible || !p.UseScenario {
		return m.ingestBySort(dataset, batch)
	}

	st0 := m.a.Stats()
	sortedBatch := append([]int64(nil), batch...)
	brep, err := m.Sort(sortedBatch, Auto)
	if err != nil {
		return nil, nil, err
	}
	stripe := m.a.StripeWidth()
	x, err := m.loadPadded(dataset, padStripeUp(n, stripe))
	if err != nil {
		return nil, nil, err
	}
	defer x.Free()
	y, err := m.loadPadded(sortedBatch, padStripeUp(len(batch), stripe))
	if err != nil {
		return nil, nil, err
	}
	defer y.Free()
	merged, err := scenario.Merge(m.a, x, y)
	if err != nil {
		return nil, nil, err
	}
	defer merged.Free()
	flat, err := merged.Unload()
	if err != nil {
		return nil, nil, err
	}
	out := flat[:n+len(batch)]
	rep := m.scenarioReport("ingest", "merge", n+len(batch), p.PaddedN, m.a.Stats().Sub(st0))
	rep.Algorithm = brep.Algorithm
	rep.FellBack = brep.FellBack
	return out, rep, nil
}

// padStripeUp pads n up to a whole number of stripes (≥ 1).
func padStripeUp(n, stripe int) int {
	pad := (n + stripe - 1) / stripe * stripe
	if pad == 0 {
		pad = stripe
	}
	return pad
}

// ingestBySort is Ingest's re-sort-everything route.
func (m *Machine) ingestBySort(dataset, batch []int64) ([]int64, *Report, error) {
	all := make([]int64, 0, len(dataset)+len(batch))
	all = append(all, dataset...)
	all = append(all, batch...)
	rep, err := m.Sort(all, Auto)
	if err != nil {
		return nil, nil, err
	}
	rep.Scenario, rep.ScenarioRoute = "ingest", "fullsort"
	return all, rep, nil
}
