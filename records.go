package repro

import (
	"fmt"
	"sync/atomic"
)

// pairKeyBits is the key width supported by SortPairs; keys and indices are
// packed into one int64 word, matching the paper's Section 7 observation
// that practical keys ("weather data, market data", social-security
// numbers) are at most 32 bits while records carry a payload.
const pairKeyBits = 32

// SortPairs sorts records (keys[i], payloads[i]) by key, in place and
// stably, using the same PDM machinery as Sort: each record is packed into
// one key word (key in the high bits, original index in the low bits), so
// one pass of the chosen algorithm moves whole records, exactly as the
// paper's model assumes ("we assume that each key fits in one word").
//
// The packing and unpacking run on the machine's worker pool as fused
// passes: one validate-and-pack loop, one unpack-and-gather into scratch,
// one copy back — three O(N) sweeps where the serial version took four.
//
// Keys must lie in [0, 2^32); len(keys) must equal len(payloads) and be at
// most 2^30 records.
func (m *Machine) SortPairs(keys, payloads []int64, alg Algorithm) (*Report, error) {
	if len(keys) != len(payloads) {
		return nil, fmt.Errorf("repro: %d keys but %d payloads", len(keys), len(payloads))
	}
	if len(keys) >= 1<<30 {
		return nil, fmt.Errorf("repro: %d records exceed the 2^30 packing limit", len(keys))
	}
	pool := m.a.Pool()
	// Fused validate + pack: each worker packs its span and reports the
	// lowest offending index, so the error is the one the serial scan found.
	packed := make([]int64, len(keys))
	bad := atomic.Int64{}
	bad.Store(-1)
	pool.For(len(keys), len(keys), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			k := keys[i]
			if k < 0 || k >= 1<<pairKeyBits {
				for {
					cur := bad.Load()
					if cur != -1 && cur <= int64(i) {
						return
					}
					if bad.CompareAndSwap(cur, int64(i)) {
						return
					}
				}
			}
			packed[i] = k<<30 | int64(i)
		}
	})
	if i := bad.Load(); i >= 0 {
		return nil, fmt.Errorf("repro: key %d at index %d outside [0, 2^%d)", keys[i], i, pairKeyBits)
	}
	rep, err := m.Sort(packed, alg)
	if err != nil {
		return nil, err
	}
	// Fused unpack + permutation gather: payloads is read-only while the
	// gather lands in scratch, then copied back in parallel.
	scratch := make([]int64, len(payloads))
	pool.For(len(keys), len(keys), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := packed[i]
			keys[i] = p >> 30
			scratch[i] = payloads[p&(1<<30-1)]
		}
	})
	pool.Copy(payloads, scratch)
	return rep, nil
}
