package repro

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/records"
)

// The full-record layer sorts (key, payload) records with the paper's
// word-sorting machinery: keys and original indices are packed into single
// int64 sort words, the words are sorted with the chosen algorithm, and
// the payload bytes are then moved into sorted order by an external
// distribution permutation (internal/records) whose I/O is charged in the
// same pass currency.
//
// Every packing constant below derives from packedSortBits so the bound,
// the shift, and the unpack mask cannot drift apart.
const (
	// packedSortBits is the usable width of a packed (key, index) sort
	// word.  62 bits keep every packed value nonnegative and strictly
	// below MaxInt64, the padding sentinel Sort reserves.
	packedSortBits = 62

	// pairKeyBits and pairIdxBits describe SortPairs' legacy contract —
	// 32-bit keys, the paper's Section 7 "practical keys" observation —
	// now just one instance of the general packing: with 2^30 records the
	// planner derives exactly this split.
	pairKeyBits = 32
	pairIdxBits = packedSortBits - pairKeyBits

	// maxPairRecords is SortPairs' record bound, inclusive: indices
	// 0..2^30−1 fit the 30-bit index field, so exactly 2^30 records pack.
	maxPairRecords = 1 << pairIdxBits
)

// packPlan resolves the packing for n records: how many low bits index a
// record and how many high bits remain for a key digit per sort round.
type packPlan struct {
	idxBits  int   // low bits holding the original index
	keyBits  int   // high bits holding the key (or key digit)
	idxMask  int64 // 1<<idxBits − 1, the unpack mask
	keyLimit int64 // 1<<keyBits, the largest+1 key a single round packs
}

// planPacking derives the packing from the record count alone.  It errors
// when n leaves fewer than one key bit (≥ 2^61 records — far beyond any
// in-memory input, but the bound is derived, not assumed).
func planPacking(n int) (packPlan, error) {
	idxBits := 0
	if n > 1 {
		idxBits = bits.Len64(uint64(n - 1))
	}
	keyBits := packedSortBits - idxBits
	if keyBits < 1 {
		return packPlan{}, fmt.Errorf("repro: %d records leave no key bits in a %d-bit packed word", n, packedSortBits)
	}
	return packPlan{
		idxBits:  idxBits,
		keyBits:  keyBits,
		idxMask:  int64(1)<<idxBits - 1,
		keyLimit: int64(1) << keyBits,
	}, nil
}

// rounds returns how many packed sort rounds cover a full 64-bit key at
// this plan's digit width (1 when keys fit a single round).
func (pp packPlan) rounds() int {
	return (64 + pp.keyBits - 1) / pp.keyBits
}

// SortRecords sorts full records — 64-bit keys with arbitrary byte
// payloads — by key, stably and in place: keys[i] pairs with payloads[i],
// and on return keys is sorted with payloads reordered to match (the
// payload bytes re-materialized from the simulated disks).  On error —
// including cancellation — both slices are left untouched, never with
// keys reordered away from their payloads.
//
// The run is a key+index sort followed by an external permutation.  When
// every key is nonnegative and fits the packing's key bits (the common
// case: any key below 2^32 always fits), one packed sort orders the
// records; otherwise — keys needing all 64 bits, including negatives — the
// layer runs LSD rounds of packed digit sorts (Report.KeyRounds), each a
// full PDM sort, which is the (key, idx) pair representation in the model.
// The payloads then move through internal/records' distribution
// permutation, charged via the normal accounting: Report.IO covers both
// phases, and Report.PermutePasses prices the payload movement in passes
// over the payload store.
//
// There is no record-count or key-width cap beyond the machine's own
// sorting capacity; payload widths may vary per record, including zero.
func (m *Machine) SortRecords(keys []int64, payloads [][]byte, alg Algorithm) (*Report, error) {
	if len(keys) != len(payloads) {
		return nil, fmt.Errorf("repro: %d keys but %d payloads", len(keys), len(payloads))
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("repro: no records to sort")
	}
	perm, sorted, rep, err := m.sortKeyIndex(keys, alg)
	if err != nil {
		return nil, err
	}
	before := m.a.Stats()
	res, err := records.Permute(m.a, payloads, perm)
	if err != nil {
		// keys and payloads are untouched: a failed run (cancellation, a
		// disk fault) must not leave the caller with keys permuted away
		// from their payloads.
		return nil, err
	}
	copy(keys, sorted)
	for j := range payloads {
		payloads[j] = res.Out[j]
	}
	rep.IO = rep.IO.Add(m.a.Stats().Sub(before))
	rep.PayloadWords = res.Words
	rep.PermutePasses = res.Passes
	rep.pipelineMetrics(rep.IO, m.a.Workers())
	return rep, nil
}

// sortKeyIndex computes the stable key order without touching keys: it
// returns the permutation realizing the order (perm[j] is the original
// index of the record at sorted position j) and the sorted key values.
// Ties keep original order (stability), because the packed index makes
// every sort word distinct.  keys is left untouched so a failure in the
// later permutation phase cannot strand the caller with keys reordered
// away from their payloads.
func (m *Machine) sortKeyIndex(keys []int64, alg Algorithm) ([]int, []int64, *Report, error) {
	n := len(keys)
	pp, err := planPacking(n)
	if err != nil {
		return nil, nil, nil, err
	}
	pool := m.a.Pool()
	// Fused scan: does every key fit one packed round?  Parallel workers
	// report the lowest out-of-range index only to decide the path.
	narrow := atomic.Bool{}
	narrow.Store(true)
	pool.For(n, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if keys[i] < 0 || keys[i] >= pp.keyLimit {
				narrow.Store(false)
				return
			}
		}
	})
	packed := make([]int64, n)
	if narrow.Load() {
		pool.For(n, n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				packed[i] = keys[i]<<pp.idxBits | int64(i)
			}
		})
		rep, err := m.Sort(packed, alg)
		if err != nil {
			return nil, nil, nil, err
		}
		rep.KeyRounds = 1
		perm := make([]int, n)
		// Unpack in place: packed doubles as the sorted-key result.
		pool.For(n, n, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				p := packed[j]
				perm[j] = int(p & pp.idxMask)
				packed[j] = p >> pp.idxBits
			}
		})
		return perm, packed, rep, nil
	}
	return m.sortKeyIndexWide(keys, alg, pp, packed)
}

// sortKeyIndexWide handles keys that need all 64 bits (including
// negatives) with LSD rounds over the sign-biased key: round r sorts
// (digit_r, current position) packed words, and because the position is
// the tiebreak, each round is a stable refinement — after the last round
// the order is fully sorted by key with original-index ties.
func (m *Machine) sortKeyIndexWide(keys []int64, alg Algorithm, pp packPlan, packed []int64) ([]int, []int64, *Report, error) {
	n := len(keys)
	pool := m.a.Pool()
	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	next := make([]int, n)
	digitMask := uint64(pp.keyLimit - 1)
	var total *Report
	for r := 0; r < pp.rounds(); r++ {
		shift := uint(r * pp.keyBits)
		pool.For(n, n, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				// The sign-bit flip maps int64 order onto uint64 order.
				u := uint64(keys[order[j]]) ^ (1 << 63)
				digit := (u >> shift) & digitMask
				packed[j] = int64(digit)<<pp.idxBits | int64(j)
			}
		})
		rep, err := m.Sort(packed, alg)
		if err != nil {
			return nil, nil, nil, err
		}
		pool.For(n, n, func(_, lo, hi int) {
			for j := lo; j < hi; j++ {
				next[j] = order[int(packed[j]&pp.idxMask)]
			}
		})
		order, next = next, order
		if total == nil {
			total = rep
		} else {
			total.Passes += rep.Passes
			total.ReadPasses += rep.ReadPasses
			total.WritePasses += rep.WritePasses
			total.FellBack = total.FellBack || rep.FellBack
			total.IO = total.IO.Add(rep.IO)
			total.Algorithm = rep.Algorithm
		}
	}
	total.KeyRounds = pp.rounds()
	// packed is free after the last round; reuse it for the sorted values.
	pool.For(n, n, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			packed[j] = keys[order[j]]
		}
	})
	return order, packed, total, nil
}

// pairCountOK reports whether n records fit SortPairs' legacy packing:
// the bound is inclusive, since n records use indices 0..n−1 and exactly
// 2^pairIdxBits of them fit the index field.
func pairCountOK(n int) bool { return n <= maxPairRecords }

// SortPairs sorts records (keys[i], payloads[i]) by key, in place and
// stably.  It is a thin compatibility wrapper over SortRecords that keeps
// the original narrow contract — keys in [0, 2^32), at most 2^30 records,
// single-word payloads — matching the paper's Section 7 observation that
// practical keys ("weather data, market data", social-security numbers)
// are at most 32 bits.  For wider keys, more records, or byte payloads,
// call SortRecords directly.
func (m *Machine) SortPairs(keys, payloads []int64, alg Algorithm) (*Report, error) {
	if len(keys) != len(payloads) {
		return nil, fmt.Errorf("repro: %d keys but %d payloads", len(keys), len(payloads))
	}
	if !pairCountOK(len(keys)) {
		return nil, fmt.Errorf("repro: %d records exceed the 2^%d packing limit", len(keys), pairIdxBits)
	}
	for i, k := range keys {
		if k < 0 || k >= 1<<pairKeyBits {
			return nil, fmt.Errorf("repro: key %d at index %d outside [0, 2^%d)", k, i, pairKeyBits)
		}
	}
	raw := make([]byte, 8*len(payloads))
	blobs := make([][]byte, len(payloads))
	for i, p := range payloads {
		b := raw[8*i : 8*i+8]
		binary.LittleEndian.PutUint64(b, uint64(p))
		blobs[i] = b
	}
	rep, err := m.SortRecords(keys, blobs, alg)
	if err != nil {
		return nil, err
	}
	for i := range payloads {
		payloads[i] = int64(binary.LittleEndian.Uint64(blobs[i]))
	}
	return rep, nil
}
