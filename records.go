package repro

import (
	"fmt"
)

// pairKeyBits is the key width supported by SortPairs; keys and indices are
// packed into one int64 word, matching the paper's Section 7 observation
// that practical keys ("weather data, market data", social-security
// numbers) are at most 32 bits while records carry a payload.
const pairKeyBits = 32

// SortPairs sorts records (keys[i], payloads[i]) by key, in place and
// stably, using the same PDM machinery as Sort: each record is packed into
// one key word (key in the high bits, original index in the low bits), so
// one pass of the chosen algorithm moves whole records, exactly as the
// paper's model assumes ("we assume that each key fits in one word").
//
// Keys must lie in [0, 2^32); len(keys) must equal len(payloads) and be at
// most 2^30 records.
func (m *Machine) SortPairs(keys, payloads []int64, alg Algorithm) (*Report, error) {
	if len(keys) != len(payloads) {
		return nil, fmt.Errorf("repro: %d keys but %d payloads", len(keys), len(payloads))
	}
	if len(keys) >= 1<<30 {
		return nil, fmt.Errorf("repro: %d records exceed the 2^30 packing limit", len(keys))
	}
	for i, k := range keys {
		if k < 0 || k >= 1<<pairKeyBits {
			return nil, fmt.Errorf("repro: key %d at index %d outside [0, 2^%d)", k, i, pairKeyBits)
		}
	}
	packed := make([]int64, len(keys))
	for i, k := range keys {
		packed[i] = k<<30 | int64(i)
	}
	rep, err := m.Sort(packed, alg)
	if err != nil {
		return nil, err
	}
	// Unpack: apply the permutation to the payloads via a scratch copy.
	oldPayloads := append([]int64(nil), payloads...)
	for i, p := range packed {
		keys[i] = p >> 30
		payloads[i] = oldPayloads[p&(1<<30-1)]
	}
	return rep, nil
}
