package repro

import (
	"context"
	"net/http"
	"time"

	"repro/internal/dist"
)

// DistConfig configures a DistSorter: the pdmd worker fleet one
// distributed sort job runs across, and the per-shard job knobs.
type DistConfig struct {
	// Workers are pdmd base URLs, one per node.
	Workers []string
	// Client is the shared HTTP client; nil selects http.DefaultClient.
	Client *http.Client
	// PageKeys bounds one upload/download page in keys (0 = 8192).
	PageKeys int
	// Concurrency bounds in-flight page uploads across shards (0 = 4).
	Concurrency int
	// RequestTimeout is the per-request deadline (0 = 30s).
	RequestTimeout time.Duration
	// Retries bounds retries of transient worker failures (0 = 3, < 0 =
	// none).
	Retries int
	// Alpha is the splitter-sampling confidence (0 = 1).
	Alpha float64
	// Alg, Kernel, Memory, Backend, BlockLatencyUS and Label pass through
	// to every shard job (zero values defer to worker defaults).
	Alg            string
	Kernel         string
	Memory         int
	Backend        string
	BlockLatencyUS int64
	Label          string
}

// DistReport is the aggregated accounting of one distributed job: the
// per-shard passes and I/O as each worker measured them, the keys-weighted
// mean and critical-path passes across the fleet, and the splitters that
// shaped the shards.
type DistReport = dist.Report

// DistShardReport is one worker's slice of a distributed job.
type DistShardReport = dist.ShardReport

// DistSorter executes sort jobs across a fleet of pdmd workers.  The
// output of every method is bit-identical to its single-machine
// counterpart (Sort, SortRecords) for any worker count; see internal/dist
// for the determinism and failure contracts.
type DistSorter struct {
	c *dist.Coordinator
}

// NewDistSorter validates the config and builds the coordinator.
func NewDistSorter(cfg DistConfig) (*DistSorter, error) {
	c, err := dist.New(dist.Config{
		Workers:        cfg.Workers,
		Client:         cfg.Client,
		PageKeys:       cfg.PageKeys,
		Concurrency:    cfg.Concurrency,
		RequestTimeout: cfg.RequestTimeout,
		Retries:        cfg.Retries,
		Alpha:          cfg.Alpha,
		Alg:            cfg.Alg,
		Kernel:         cfg.Kernel,
		Memory:         cfg.Memory,
		Backend:        cfg.Backend,
		BlockLatencyUS: cfg.BlockLatencyUS,
		Label:          cfg.Label,
	})
	if err != nil {
		return nil, err
	}
	return &DistSorter{c: c}, nil
}

// Sort runs one distributed key sort and returns the globally sorted keys
// with the fleet's aggregated report.
func (d *DistSorter) Sort(ctx context.Context, keys []int64) ([]int64, *DistReport, error) {
	return d.c.Sort(ctx, keys)
}

// SortRecords runs one distributed full-record sort: payloads ride with
// their keys and the stable order among equal keys matches the
// single-machine SortRecords exactly.
func (d *DistSorter) SortRecords(ctx context.Context, keys []int64, payloads [][]byte) ([]int64, [][]byte, *DistReport, error) {
	return d.c.SortRecords(ctx, keys, payloads)
}
